package sim

import (
	"math"
	"testing"

	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// These tests reproduce the paper's motivating example (Figure 1 and
// Table 1): a 5-node cluster running SJF without backfilling, with a
// preliminary job Jp occupying part of the cluster, comparing the base
// scheduler against an inspector that rejects J0's first decision.
//
// Times use seconds with 1 figure-minute = 60 s, so the bounded-slowdown
// 10-second threshold never engages, matching the paper's arithmetic.

// rejectJobOnce returns an inspector that rejects the first decision for
// the job with the given ID and accepts everything else.
func rejectJobOnce(id int) Inspector {
	return func(s *State) bool {
		return s.Job.ID == id && s.Rejections == 0
	}
}

// summarizeWithout computes metrics excluding the preliminary job.
func summarizeWithout(res Result, skipID, maxProcs int) metrics.Summary {
	var keep []metrics.JobResult
	for _, r := range res.Results {
		if r.ID != skipID {
			keep = append(keep, r)
		}
	}
	return metrics.Compute(keep, maxProcs)
}

func findStart(t *testing.T, res Result, id int) float64 {
	t.Helper()
	for _, r := range res.Results {
		if r.ID == id {
			return r.Start
		}
	}
	t.Fatalf("job %d missing from results", id)
	return 0
}

// Case (a): the selected shortest job has sufficient resources to run.
//
//	Jp: 2 nodes, 60 s, submitted at 0 (starts immediately, models the
//	    preliminary job running before scheduling begins)
//	J0: 3 nodes, 300 s, submitted at 0
//	J1: 2 nodes, 300 s, submitted at 0
//	J2: 3 nodes, 180 s, submitted at 60
func caseAJobs() []workload.Job {
	return []workload.Job{
		{ID: 1, Submit: 0, Run: 60, Est: 60, Procs: 2},    // Jp
		{ID: 2, Submit: 0, Run: 300, Est: 300, Procs: 3},  // J0
		{ID: 3, Submit: 0, Run: 300, Est: 300, Procs: 2},  // J1
		{ID: 4, Submit: 60, Run: 180, Est: 180, Procs: 3}, // J2
	}
}

func TestMotivatingCaseABase(t *testing.T) {
	res, err := Run(caseAJobs(), Config{MaxProcs: 5, Policy: sched.SJF()})
	if err != nil {
		t.Fatal(err)
	}
	// Expected schedule: Jp@0, J0@0; at t1 J2 is picked but blocks (needs 3,
	// only 2 free); J2@300, J1@300; sequence ends at t10 (600 s).
	wantStarts := map[int]float64{1: 0, 2: 0, 4: 300, 3: 300}
	for id, want := range wantStarts {
		if got := findStart(t, res, id); got != want {
			t.Errorf("base: job %d starts at %v, want %v", id, got, want)
		}
	}
	s := summarizeWithout(res, 1, 5)
	// Table 1 Case(a)-NoInspect: wait (0+5+4)/3 = 3 min; bsld 1.77.
	if math.Abs(s.AvgWait-180) > 1e-9 {
		t.Errorf("base wait = %v s, want 180 (3 min)", s.AvgWait)
	}
	if math.Abs(s.AvgBSLD-(1+2+7.0/3)/3) > 1e-9 {
		t.Errorf("base bsld = %v, want 1.777", s.AvgBSLD)
	}
}

func TestMotivatingCaseAInspected(t *testing.T) {
	res, err := Run(caseAJobs(), Config{MaxProcs: 5, Policy: sched.SJF(), Inspector: rejectJobOnce(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: Jp@0; J0 rejected at 0; at t1 (60 s) J2 starts immediately;
	// J0 and J1 start at t4 (240 s); sequence ends at t9 (540 s).
	wantStarts := map[int]float64{1: 0, 4: 60, 2: 240, 3: 240}
	for id, want := range wantStarts {
		if got := findStart(t, res, id); got != want {
			t.Errorf("inspected: job %d starts at %v, want %v", id, got, want)
		}
	}
	if res.Rejections != 1 {
		t.Errorf("rejections = %d, want 1", res.Rejections)
	}
	s := summarizeWithout(res, 1, 5)
	// Table 1 Case(a)-Inspected: bsld (1.8+1.8+1)/3 = 1.53. (The paper's
	// wait entry "(4+4+1)/3=3" is internally inconsistent with its own bsld
	// row, which implies J2 waits 0; the schedule here gives (4+4+0)/3.)
	if math.Abs(s.AvgBSLD-(1.8+1.8+1)/3) > 1e-9 {
		t.Errorf("inspected bsld = %v, want 1.533", s.AvgBSLD)
	}
	if math.Abs(s.AvgWait-160) > 1e-9 {
		t.Errorf("inspected wait = %v s, want 160", s.AvgWait)
	}
	// The whole sequence must finish earlier than the base run (t9 < t10).
	var lastEnd float64
	for _, r := range res.Results {
		lastEnd = math.Max(lastEnd, r.End)
	}
	if lastEnd != 540 {
		t.Errorf("inspected makespan end = %v, want 540 (t9)", lastEnd)
	}
}

// Case (b): the selected shortest job cannot run immediately.
//
//	Jp: 3 nodes, 180 s, submitted at 0
//	J0: 4 nodes, 300 s, submitted at 0
//	J1: 2 nodes, 180 s, submitted at 60
func caseBJobs() []workload.Job {
	return []workload.Job{
		{ID: 1, Submit: 0, Run: 180, Est: 180, Procs: 3},  // Jp
		{ID: 2, Submit: 0, Run: 300, Est: 300, Procs: 4},  // J0
		{ID: 3, Submit: 60, Run: 180, Est: 180, Procs: 2}, // J1
	}
}

func TestMotivatingCaseBBase(t *testing.T) {
	res, err := Run(caseBJobs(), Config{MaxProcs: 5, Policy: sched.SJF()})
	if err != nil {
		t.Fatal(err)
	}
	// J0 is picked at t0 and blocks until Jp completes at t3; J1 arrives at
	// t1 but cannot run past the committed J0. J0@180, J1@480.
	wantStarts := map[int]float64{1: 0, 2: 180, 3: 480}
	for id, want := range wantStarts {
		if got := findStart(t, res, id); got != want {
			t.Errorf("base: job %d starts at %v, want %v", id, got, want)
		}
	}
	s := summarizeWithout(res, 1, 5)
	// Table 1 Case(b)-NoInspect: wait (3+7)/2 = 5 min; bsld (1.6+3.3)/2 = 2.45.
	if math.Abs(s.AvgWait-300) > 1e-9 {
		t.Errorf("base wait = %v s, want 300 (5 min)", s.AvgWait)
	}
	want := (1.6 + (420.0+180)/180) / 2 // 2.4667; paper rounds 3.33 to 3.3
	if math.Abs(s.AvgBSLD-want) > 1e-9 {
		t.Errorf("base bsld = %v, want %v", s.AvgBSLD, want)
	}
}

func TestMotivatingCaseBInspected(t *testing.T) {
	res, err := Run(caseBJobs(), Config{MaxProcs: 5, Policy: sched.SJF(), Inspector: rejectJobOnce(2)})
	if err != nil {
		t.Fatal(err)
	}
	// J0 rejected at t0; at t1 SJF prefers J1 (shorter), which fits the 2
	// free nodes and starts immediately; J0 starts at t4 when J1 completes.
	wantStarts := map[int]float64{1: 0, 3: 60, 2: 240}
	for id, want := range wantStarts {
		if got := findStart(t, res, id); got != want {
			t.Errorf("inspected: job %d starts at %v, want %v", id, got, want)
		}
	}
	s := summarizeWithout(res, 1, 5)
	// Table 1 Case(b)-Inspected: wait (4+0)/2 = 2 min; bsld (1.8+1)/2 = 1.4.
	if math.Abs(s.AvgWait-120) > 1e-9 {
		t.Errorf("inspected wait = %v s, want 120 (2 min)", s.AvgWait)
	}
	if math.Abs(s.AvgBSLD-1.4) > 1e-9 {
		t.Errorf("inspected bsld = %v, want 1.40", s.AvgBSLD)
	}
}

// Table1 verifies the improvement directions the motivating example claims.
func TestTable1Directions(t *testing.T) {
	for name, jobs := range map[string][]workload.Job{"a": caseAJobs(), "b": caseBJobs()} {
		base, err := Run(jobs, Config{MaxProcs: 5, Policy: sched.SJF()})
		if err != nil {
			t.Fatal(err)
		}
		insp, err := Run(jobs, Config{MaxProcs: 5, Policy: sched.SJF(), Inspector: rejectJobOnce(2)})
		if err != nil {
			t.Fatal(err)
		}
		sb := summarizeWithout(base, 1, 5)
		si := summarizeWithout(insp, 1, 5)
		if si.AvgBSLD >= sb.AvgBSLD {
			t.Errorf("case %s: inspected bsld %v not better than base %v", name, si.AvgBSLD, sb.AvgBSLD)
		}
		if si.AvgWait > sb.AvgWait {
			t.Errorf("case %s: inspected wait %v worse than base %v", name, si.AvgWait, sb.AvgWait)
		}
	}
}
