package sim

import (
	"testing"

	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// TestEnvRingSpansMatchTracer pins the dual-emit contract: with both the
// JSONL span tracer and the binary ring attached, the Env emits the same
// decision spans to each — the ring is a second reader, never a fork.
func TestEnvRingSpansMatchTracer(t *testing.T) {
	tr := workload.SDSCSP2Like(400, 11)
	jobs := tr.Window(50, 64)
	spans := obs.NewSpanTracer(1 << 12)
	ring := obs.NewTraceRing(1<<12, 512)
	cfg := Config{
		MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true,
		NoValidate: true, Spans: spans, Ring: ring, SpanParent: obs.DeriveSpanID(42, 7),
	}
	env := NewEnv()
	st, done, err := env.Reset(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !done {
		st, done = env.Step(st.Job.ID%5 == 0 && st.Rejections < 3)
	}
	if env.Result().Inspections == 0 {
		t.Fatal("window produced no inspections; widen it")
	}
	if got, want := int(ring.Total()), len(spans.Spans()); got != want {
		t.Fatalf("ring recorded %d spans, tracer %d", got, want)
	}
	if ring.Oversized() != 0 {
		t.Fatalf("%d decision spans overflowed the default slot size", ring.Oversized())
	}
}

// TestEnvRingOnlySpans pins the binary-only configuration: with Spans nil
// and only the ring attached, decision spans still record, built in the
// Env's scratch attribute buffer.
func TestEnvRingOnlySpans(t *testing.T) {
	tr := workload.SDSCSP2Like(400, 11)
	jobs := tr.Window(50, 64)
	ring := obs.NewTraceRing(1<<12, 512)
	cfg := Config{
		MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true,
		NoValidate: true, Ring: ring, SpanParent: 99,
	}
	env := NewEnv()
	st, done, err := env.Reset(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !done {
		st, done = env.Step(st.Job.ID%5 == 0 && st.Rejections < 3)
	}
	if want := env.Result().Inspections; int(ring.Total()) != want || want == 0 {
		t.Fatalf("ring recorded %d spans for %d inspections", ring.Total(), want)
	}
}

// TestEnvStepAllocsBinaryRing is the tentpole's hot-path pin: an episode
// with the binary ring attached (no JSONL tracer, no sink) must allocate
// nothing — spans are built in Env scratch and encoded into the
// preallocated arena.
func TestEnvStepAllocsBinaryRing(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 13)
	jobs := tr.Window(100, 256)
	cfg := Config{
		MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true,
		NoValidate: true, Ring: obs.NewTraceRing(1<<12, 512),
		SpanParent: obs.DeriveSpanID(1),
	}
	env := NewEnv()
	episode := func() {
		obsState, done, err := env.Reset(jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for !done {
			obsState, done = env.Step(obsState.Job.ID%7 == 0 && obsState.Rejections < 2)
		}
	}
	episode() // warm up buffers
	if allocs := testing.AllocsPerRun(5, episode); allocs > 0 {
		t.Fatalf("binary-ring episode allocated %.1f times, want 0", allocs)
	}
}
