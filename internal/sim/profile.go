package sim

import "sort"

// profile is a step function of free processors over future time, built
// from running-job estimated completions and queued-job reservations. It is
// the planning structure behind conservative backfilling, where every
// waiting job holds a reservation and no job may start if it would delay
// any earlier-priority reservation.
type profile struct {
	times []float64 // breakpoints, ascending; times[0] is "now"
	free  []int     // free processors in [times[i], times[i+1])
}

// newProfile builds the availability profile at time now from the running
// set. A running job whose estimate already elapsed is treated as releasing
// immediately (it can finish any moment).
func newProfile(now float64, freeNow int, running []runningJob) *profile {
	type rel struct {
		t float64
		p int
	}
	rels := make([]rel, 0, len(running))
	for _, r := range running {
		t := r.estEnd
		if t < now {
			t = now
		}
		rels = append(rels, rel{t, r.procs})
	}
	sort.Slice(rels, func(i, k int) bool { return rels[i].t < rels[k].t })
	p := &profile{times: []float64{now}, free: []int{freeNow}}
	for _, r := range rels {
		last := len(p.times) - 1
		if r.t == p.times[last] {
			p.free[last] += r.p
			continue
		}
		p.times = append(p.times, r.t)
		p.free = append(p.free, p.free[last]+r.p)
	}
	return p
}

// earliestStart returns the earliest time at or after now at which procs
// processors stay free for duration seconds.
func (p *profile) earliestStart(procs int, duration float64) float64 {
	for i := 0; i < len(p.times); i++ {
		if p.free[i] < procs {
			continue
		}
		start := p.times[i]
		end := start + duration
		ok := true
		for k := i; k < len(p.times) && p.times[k] < end; k++ {
			if p.free[k] < procs {
				ok = false
				break
			}
		}
		if ok {
			return start
		}
	}
	// beyond the last breakpoint everything is free
	return p.times[len(p.times)-1]
}

// reserve subtracts procs processors over [start, start+duration),
// inserting breakpoints as needed.
func (p *profile) reserve(start float64, procs int, duration float64) {
	end := start + duration
	p.insertBreak(start)
	p.insertBreak(end)
	for i := range p.times {
		if p.times[i] >= start && p.times[i] < end {
			p.free[i] -= procs
		}
	}
}

// insertBreak ensures t is a breakpoint.
func (p *profile) insertBreak(t float64) {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return
	}
	if i == 0 {
		// t before "now": clamp to now (already a breakpoint)
		return
	}
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+1:], p.times[i:])
	copy(p.free[i+1:], p.free[i:])
	p.times[i] = t
	p.free[i] = p.free[i-1]
}

// backfillConservative plans reservations for every waiting job in base-
// policy priority order (the reserved head job first) and starts those
// whose earliest feasible time is now. Unlike EASY, no started job can
// delay ANY earlier-priority waiting job's planned start.
func (s *Env) backfillConservative(reservedID int) {
	for {
		started := s.conservativePass(reservedID)
		if !started {
			return
		}
	}
}

// conservativePass runs one planning pass; reports whether any job started.
func (s *Env) conservativePass(reservedID int) bool {
	p := newProfile(s.now, s.free, s.running)

	// Order: the reserved job first, then remaining queue by policy score.
	order := make([]int, 0, len(s.queue))
	ri := s.indexOf(reservedID)
	order = append(order, ri)
	type scored struct {
		idx   int
		score float64
		id    int
	}
	rest := make([]scored, 0, len(s.queue)-1)
	for i := range s.queue {
		if i == ri {
			continue
		}
		rest = append(rest, scored{i, s.cfg.Policy.Score(&s.queue[i].job, s.now), s.queue[i].job.ID})
	}
	sort.Slice(rest, func(a, b int) bool {
		if rest[a].score != rest[b].score {
			return rest[a].score < rest[b].score
		}
		return rest[a].id < rest[b].id
	})
	for _, r := range rest {
		order = append(order, r.idx)
	}

	for _, idx := range order {
		j := &s.queue[idx].job
		start := p.earliestStart(j.Procs, j.Est)
		if start <= s.now && j.Procs <= s.free && j.ID != reservedID {
			s.emitBackfill(idx)
			s.startJob(idx)
			s.out.Backfills++
			return true // queue indices shifted; re-plan
		}
		p.reserve(start, j.Procs, j.Est)
	}
	return false
}
