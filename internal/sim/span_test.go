package sim

import (
	"testing"

	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// TestEnvDecisionSpans pins the flight-recorder contract of the Env: one
// span per inspected decision, named "decision", parented to
// Config.SpanParent, with an ID that is a pure function of (parent,
// decision index) and an action attribute matching the verdict.
func TestEnvDecisionSpans(t *testing.T) {
	tr := workload.SDSCSP2Like(400, 11)
	jobs := tr.Window(50, 64)
	parent := obs.DeriveSpanID(42, 7)
	spans := obs.NewSpanTracer(1 << 12)
	cfg := Config{
		MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true,
		NoValidate: true, Spans: spans, SpanParent: parent,
	}
	env := NewEnv()
	var verdicts []bool
	st, done, err := env.Reset(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !done {
		reject := st.Job.ID%5 == 0 && st.Rejections < 3
		verdicts = append(verdicts, reject)
		st, done = env.Step(reject)
	}
	res := env.Result()
	got := spans.Spans()
	if res.Inspections == 0 {
		t.Fatal("window produced no inspections; widen it")
	}
	if len(got) != res.Inspections {
		t.Fatalf("%d spans for %d inspections", len(got), res.Inspections)
	}
	for i, sp := range got {
		if sp.Name != "decision" || sp.Parent != parent {
			t.Fatalf("span %d: name %q parent %d, want decision/%d", i, sp.Name, sp.Parent, parent)
		}
		if want := obs.DeriveSpanID(uint64(parent), uint64(i)); sp.ID != want {
			t.Fatalf("span %d: ID %d, want derived %d", i, sp.ID, want)
		}
		if sp.WallEnd < sp.WallStart {
			t.Fatalf("span %d: wall end precedes start", i)
		}
		action := ""
		for _, a := range sp.Attrs {
			if a.Key == "action" {
				action = a.Str
			}
		}
		want := "accept"
		if verdicts[i] {
			want = "reject"
		}
		if action != want {
			t.Fatalf("span %d: action %q, want %q", i, action, want)
		}
	}
}

// TestEnvDecisionSpanIDsDeterministic reruns the same episode and demands
// the exact same span ID sequence — identity must never depend on wall
// clock or execution interleaving.
func TestEnvDecisionSpanIDsDeterministic(t *testing.T) {
	tr := workload.SDSCSP2Like(400, 11)
	jobs := tr.Window(50, 64)
	run := func() []obs.SpanID {
		spans := obs.NewSpanTracer(1 << 12)
		cfg := Config{
			MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true,
			NoValidate: true, Spans: spans, SpanParent: 99,
		}
		env := NewEnv()
		st, done, err := env.Reset(jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for !done {
			st, done = env.Step(st.Job.ID%5 == 0 && st.Rejections < 3)
		}
		var ids []obs.SpanID
		for _, sp := range spans.Spans() {
			ids = append(ids, sp.ID)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d: ID %d vs %d across identical runs", i, a[i], b[i])
		}
	}
}

// TestEnvStepAllocsNilSpanTracer is the explicit flight-recorder variant of
// TestEnvStepAllocs: with Config.Spans nil (tracing disabled) the span hook
// in Env.Step must cost one branch and zero heap allocations per episode.
func TestEnvStepAllocsNilSpanTracer(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 13)
	jobs := tr.Window(100, 256)
	cfg := Config{
		MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true,
		NoValidate: true, Spans: nil, SpanParent: 0,
	}
	env := NewEnv()
	episode := func() {
		obsState, done, err := env.Reset(jobs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for !done {
			obsState, done = env.Step(obsState.Job.ID%7 == 0 && obsState.Rejections < 2)
		}
	}
	episode() // warm up buffers
	if allocs := testing.AllocsPerRun(5, episode); allocs > 0 {
		t.Fatalf("nil span tracer episode allocated %.1f times, want 0", allocs)
	}
}
