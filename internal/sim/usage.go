package sim

// Optional usage-timeline tracking: when Config.TrackUsage is set, the
// simulator records a sample at every state change (job start, completion,
// rejection wait), giving a step function of processor usage and queue
// length over time. The evaluation harness uses it to analyze congestion
// dynamics; it is off by default to keep the training loop allocation-lean.

// UsagePoint is one step-function sample: the state holds from Time until
// the next point's Time.
type UsagePoint struct {
	Time     float64
	UsedProc int // processors executing jobs
	QueueLen int // jobs waiting (including any committed head job)
}

// recordUsage appends a sample if tracking is enabled and the state
// actually changed.
func (s *Env) recordUsage() {
	if !s.cfg.TrackUsage {
		return
	}
	used := s.cfg.MaxProcs - s.free
	q := len(s.queue)
	n := len(s.out.Usage)
	if n > 0 {
		last := &s.out.Usage[n-1]
		if last.UsedProc == used && last.QueueLen == q {
			return
		}
		if last.Time == s.now {
			last.UsedProc, last.QueueLen = used, q
			return
		}
	}
	s.out.Usage = append(s.out.Usage, UsagePoint{Time: s.now, UsedProc: used, QueueLen: q})
}

// TimeWeightedUtil integrates the usage timeline into a mean utilization in
// [0,1] over [first sample, horizon]. It returns 0 when tracking was off.
func (r Result) TimeWeightedUtil(maxProcs int, horizon float64) float64 {
	area := integrateUsage(r.Usage, horizon, func(p UsagePoint) float64 { return float64(p.UsedProc) })
	if area == 0 || maxProcs <= 0 {
		return 0
	}
	span := horizon - r.Usage[0].Time
	if span <= 0 {
		return 0
	}
	return area / (span * float64(maxProcs))
}

// TimeWeightedQueueLen integrates the mean number of waiting jobs over
// [first sample, horizon]. It returns 0 when tracking was off.
func (r Result) TimeWeightedQueueLen(horizon float64) float64 {
	area := integrateUsage(r.Usage, horizon, func(p UsagePoint) float64 { return float64(p.QueueLen) })
	if len(r.Usage) == 0 {
		return 0
	}
	span := horizon - r.Usage[0].Time
	if span <= 0 {
		return 0
	}
	return area / span
}

// integrateUsage integrates f over the step function up to horizon.
func integrateUsage(usage []UsagePoint, horizon float64, f func(UsagePoint) float64) float64 {
	var area float64
	for i, p := range usage {
		end := horizon
		if i+1 < len(usage) && usage[i+1].Time < horizon {
			end = usage[i+1].Time
		}
		if end > p.Time {
			area += f(p) * (end - p.Time)
		}
	}
	return area
}
