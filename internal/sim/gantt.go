package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"schedinspector/internal/metrics"
)

// WriteGantt renders a schedule as an ASCII Gantt chart: one row per job
// ('.' waiting, '#' running) plus a cluster-occupancy strip, scaled to
// width columns. It is a debugging and teaching aid — the examples use it
// to make scheduling decisions visible — not a plotting substitute.
func WriteGantt(w io.Writer, results []metrics.JobResult, maxProcs, width int) error {
	if len(results) == 0 {
		_, err := fmt.Fprintln(w, "(empty schedule)")
		return err
	}
	if width < 10 {
		width = 10
	}
	t0 := results[0].Submit
	t1 := results[0].End
	for _, r := range results {
		if r.Submit < t0 {
			t0 = r.Submit
		}
		if r.End > t1 {
			t1 = r.End
		}
	}
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	col := func(t float64) int {
		c := int(float64(width) * (t - t0) / span)
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}

	rows := append([]metrics.JobResult(nil), results...)
	sort.Slice(rows, func(i, k int) bool {
		if rows[i].Submit != rows[k].Submit {
			return rows[i].Submit < rows[k].Submit
		}
		return rows[i].ID < rows[k].ID
	})

	for _, r := range rows {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for i := col(r.Submit); i < col(r.Start) && i < width; i++ {
			line[i] = '.'
		}
		for i := col(r.Start); i < col(r.End) && i < width; i++ {
			line[i] = '#'
		}
		// mark at least one cell for very short jobs
		if c := col(r.Start); c < width && line[c] == ' ' {
			line[c] = '#'
		}
		if _, err := fmt.Fprintf(w, "J%-5d %4dp |%s|\n", r.ID, r.Procs, line); err != nil {
			return err
		}
	}

	// occupancy strip: used processors sampled per column, as 0-9 deciles
	strip := make([]byte, width)
	for i := 0; i < width; i++ {
		t := t0 + span*(float64(i)+0.5)/float64(width)
		used := 0
		for _, r := range results {
			if r.Start <= t && t < r.End {
				used += r.Procs
			}
		}
		d := 0
		if maxProcs > 0 {
			d = used * 9 / maxProcs
		}
		if d > 9 {
			d = 9
		}
		strip[i] = byte('0' + d)
	}
	_, err := fmt.Fprintf(w, "%s|%s|  cluster occupancy (0=idle..9=full), %.0fs span\n",
		strings.Repeat(" ", 12), strip, span)
	return err
}
