package sim

import (
	"testing"

	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// The head-to-head benchmark behind the Env refactor's performance claim:
// the same inspected 256-job episode through the steppable Env core and
// through the verbatim seed engine (legacyRun, preserved in env_test.go).
// The Env path reuses every buffer across episodes, so its per-decision
// cost must undercut the seed's allocating fillState/reservation path.

func benchWindow(b *testing.B) ([]workload.Job, Config) {
	b.Helper()
	tr := workload.SDSCSP2Like(4000, 7)
	jobs := tr.Window(100, 256)
	cfg := Config{
		MaxProcs:  tr.MaxProcs,
		Policy:    sched.SJF(),
		Backfill:  true,
		Inspector: scriptedInspector(),
	}
	return jobs, cfg
}

// BenchmarkEnvInspected measures the Env-driven interactive episode on a
// reused environment: the steady-state path every rollout driver runs.
func BenchmarkEnvInspected(b *testing.B) {
	jobs, cfg := benchWindow(b)
	if err := ValidateJobs(jobs, cfg.MaxProcs); err != nil {
		b.Fatal(err)
	}
	cfg.NoValidate = true
	env := NewEnv()
	episode := func() int {
		if _, err := RunEnv(env, jobs, cfg); err != nil {
			b.Fatal(err)
		}
		return env.Result().Inspections
	}
	episode() // warm up the reusable buffers
	b.ReportAllocs()
	b.ResetTimer()
	decisions := 0
	for i := 0; i < b.N; i++ {
		decisions += episode()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(decisions), "ns/decision")
}

// BenchmarkEnvInspectedSpanTraced is the same episode with the decision
// flight recorder attached (span tracer, no sink): the price of always-on
// tracing relative to BenchmarkEnvInspected, gated in BENCH_env.json.
func BenchmarkEnvInspectedSpanTraced(b *testing.B) {
	jobs, cfg := benchWindow(b)
	if err := ValidateJobs(jobs, cfg.MaxProcs); err != nil {
		b.Fatal(err)
	}
	cfg.NoValidate = true
	cfg.Spans = obs.NewSpanTracer(1 << 12)
	cfg.SpanParent = obs.DeriveSpanID(1)
	env := NewEnv()
	episode := func() int {
		if _, err := RunEnv(env, jobs, cfg); err != nil {
			b.Fatal(err)
		}
		return env.Result().Inspections
	}
	episode() // warm up the reusable buffers
	b.ReportAllocs()
	b.ResetTimer()
	decisions := 0
	for i := 0; i < b.N; i++ {
		decisions += episode()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(decisions), "ns/decision")
}

// BenchmarkEnvInspectedBinaryFlight is the same episode with the binary
// flight recorder attached (arena-backed trace ring, no sink): the price of
// always-on production tracing. Gated in BENCH_env.json — the whole point of
// the ring is that this stays allocation-free and within a few hundred
// nanoseconds of the untraced path, where the JSONL span tracer pays
// json.Marshal per decision.
func BenchmarkEnvInspectedBinaryFlight(b *testing.B) {
	jobs, cfg := benchWindow(b)
	if err := ValidateJobs(jobs, cfg.MaxProcs); err != nil {
		b.Fatal(err)
	}
	cfg.NoValidate = true
	cfg.Ring = obs.NewTraceRing(1<<12, 512)
	cfg.SpanParent = obs.DeriveSpanID(1)
	env := NewEnv()
	episode := func() int {
		if _, err := RunEnv(env, jobs, cfg); err != nil {
			b.Fatal(err)
		}
		return env.Result().Inspections
	}
	episode() // warm up the reusable buffers
	b.ReportAllocs()
	b.ResetTimer()
	decisions := 0
	for i := 0; i < b.N; i++ {
		decisions += episode()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(decisions), "ns/decision")
}

// BenchmarkLegacyInspected is the identical episode through the seed
// engine — per-call validation, allocating state rebuilds and reservation
// copies included, exactly as the pre-refactor hot path paid them.
func BenchmarkLegacyInspected(b *testing.B) {
	jobs, cfg := benchWindow(b)
	episode := func() int {
		res, err := legacyRun(jobs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.Inspections
	}
	episode()
	b.ReportAllocs()
	b.ResetTimer()
	decisions := 0
	for i := 0; i < b.N; i++ {
		decisions += episode()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(decisions), "ns/decision")
}
