package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

func TestProfileBasics(t *testing.T) {
	// 10-proc cluster, 4 free now; running jobs release 3 at t=100 and 3 at
	// t=200.
	running := []runningJob{
		{end: 100, estEnd: 100, procs: 3},
		{end: 200, estEnd: 200, procs: 3},
	}
	p := newProfile(0, 4, running)
	if got := p.earliestStart(4, 50); got != 0 {
		t.Errorf("4 procs now: start %v, want 0", got)
	}
	if got := p.earliestStart(6, 50); got != 100 {
		t.Errorf("6 procs: start %v, want 100", got)
	}
	if got := p.earliestStart(10, 50); got != 200 {
		t.Errorf("10 procs: start %v, want 200", got)
	}

	// Reserve 4 procs for [0, 150): a 6-proc job must now wait until 150.
	p.reserve(0, 4, 150)
	if got := p.earliestStart(6, 10); got != 150 {
		t.Errorf("after reservation: start %v, want 150", got)
	}
}

func TestProfileExpiredEstimates(t *testing.T) {
	// A running job past its estimate is planned as releasing now.
	running := []runningJob{{end: 500, estEnd: 50, procs: 5}}
	p := newProfile(100, 0, running)
	if got := p.earliestStart(5, 10); got != 100 {
		t.Errorf("expired estimate: start %v, want 100 (now)", got)
	}
}

func TestConservativeBackfillStartsSafeJobs(t *testing.T) {
	// Identical to the EASY test: the short narrow job must backfill.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 3},
		{ID: 2, Submit: 1, Run: 100, Est: 100, Procs: 4},
		{ID: 3, Submit: 2, Run: 5, Est: 5, Procs: 1},
	}
	res, err := Run(jobs, Config{MaxProcs: 4, Policy: sched.FCFS(), Backfill: true, Conservative: true})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[int]float64{}
	for _, r := range res.Results {
		byID[r.ID] = r.Start
	}
	if byID[3] != 2 {
		t.Errorf("job 3 start %v, want 2 (backfilled)", byID[3])
	}
	if byID[2] != 100 {
		t.Errorf("job 2 start %v, want 100", byID[2])
	}
}

func TestConservativeStricterThanEASY(t *testing.T) {
	// Under EASY, a job may backfill if it does not delay the HEAD
	// reservation, even if it delays a lower-priority waiting job. Under
	// conservative backfilling every waiting job holds a reservation.
	//
	// Cluster 8. Job1 runs [0,100) on 6. Job2 (head, 8 procs) reserves
	// t=100. Job3 (5 procs, est 300) reserves t=200 (after job2). Job4
	// (2 procs, est 250): EASY lets it start at t=3 (fits 2 free, extra=2);
	// conservative must also check job3's reservation at t=200-500 — job4
	// running [3,253) on 2 procs leaves 6 at t=200 — job3 needs 5 ≤ 6, so it
	// still fits. Use a wider job4 (procs 4 > extra 2): EASY rejects it too.
	// Instead verify conservative never delays job3's planned start below.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 6},
		{ID: 2, Submit: 1, Run: 100, Est: 100, Procs: 8},
		{ID: 3, Submit: 2, Run: 300, Est: 300, Procs: 5},
		{ID: 4, Submit: 3, Run: 250, Est: 250, Procs: 2},
	}
	easy, err := Run(jobs, Config{MaxProcs: 8, Policy: sched.FCFS(), Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := Run(jobs, Config{MaxProcs: 8, Policy: sched.FCFS(), Backfill: true, Conservative: true})
	if err != nil {
		t.Fatal(err)
	}
	start := func(res Result, id int) float64 {
		for _, r := range res.Results {
			if r.ID == id {
				return r.Start
			}
		}
		t.Fatalf("job %d missing", id)
		return 0
	}
	// Both must not delay the head reservation.
	if start(easy, 2) != 100 || start(cons, 2) != 100 {
		t.Errorf("head delayed: easy %v cons %v", start(easy, 2), start(cons, 2))
	}
	// Job 3 starts when job 2 finishes under both (8-proc job blocks all).
	if start(cons, 3) != 200 {
		t.Errorf("conservative job 3 start %v, want 200", start(cons, 3))
	}
	// Job 4 would overlap the head reservation at t=100 ([3,253) needs 2 of
	// the 8 procs job 2 reserves), so neither variant may start it early.
	if start(easy, 4) != 200 || start(cons, 4) != 200 {
		t.Errorf("job 4 start easy=%v cons=%v, want 200/200", start(easy, 4), start(cons, 4))
	}
}

func TestConservativeInvariants(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 19)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4; i++ {
		jobs := tr.RandomWindow(rng, 200, 0, 0)
		res, err := Run(jobs, Config{
			MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true, Conservative: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, jobs, res, tr.MaxProcs)
	}
	// with a random inspector on top
	insp := func(s *State) bool { return rng.Float64() < 0.25 }
	jobs := tr.RandomWindow(rng, 150, 0, 0)
	res, err := Run(jobs, Config{
		MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true, Conservative: true, Inspector: insp,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, jobs, res, tr.MaxProcs)
}

// Conservative backfilling should never beat EASY on backfill count (it is
// strictly more constrained) but both must schedule everything.
func TestConservativeVsEASYBackfills(t *testing.T) {
	tr := workload.CTCSP2Like(3000, 23)
	rng := rand.New(rand.NewSource(5))
	var easySum, consSum int
	for i := 0; i < 5; i++ {
		jobs := tr.RandomWindow(rng, 200, 0, 0)
		e, err := Run(jobs, Config{MaxProcs: tr.MaxProcs, Policy: sched.FCFS(), Backfill: true})
		if err != nil {
			t.Fatal(err)
		}
		c, err := Run(jobs, Config{MaxProcs: tr.MaxProcs, Policy: sched.FCFS(), Backfill: true, Conservative: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(e.Results) != 200 || len(c.Results) != 200 {
			t.Fatal("jobs lost")
		}
		easySum += e.Backfills
		consSum += c.Backfills
	}
	t.Logf("backfills: EASY %d, conservative %d", easySum, consSum)
	if consSum == 0 && easySum > 10 {
		t.Error("conservative backfilling appears inert")
	}
}

func TestProfileInsertBreakOrdering(t *testing.T) {
	p := newProfile(10, 3, []runningJob{{end: 100, estEnd: 100, procs: 5}})
	p.insertBreak(50)
	p.insertBreak(50) // duplicate: no-op
	p.insertBreak(5)  // before now: clamped/no-op
	if !sort.Float64sAreSorted(p.times) {
		t.Errorf("times unsorted: %v", p.times)
	}
	for i := 1; i < len(p.times); i++ {
		if p.times[i] == p.times[i-1] {
			t.Errorf("duplicate breakpoint: %v", p.times)
		}
	}
	// free count at inserted break inherits its left neighbor
	i := sort.SearchFloat64s(p.times, 50)
	if p.free[i] != 3 {
		t.Errorf("free at inserted break = %d, want 3", p.free[i])
	}
	if math.IsNaN(p.earliestStart(8, 10)) {
		t.Error("NaN earliest start")
	}
}
