package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

func mustRun(t *testing.T, jobs []workload.Job, cfg Config) Result {
	t.Helper()
	res, err := Run(jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	if _, err := Run([]workload.Job{{ID: 1, Submit: 0, Run: 1, Est: 1, Procs: 99}},
		Config{MaxProcs: 4, Policy: sched.FCFS()}); err == nil {
		t.Error("oversized job accepted")
	}
	if _, err := Run([]workload.Job{
		{ID: 1, Submit: 10, Run: 1, Est: 1, Procs: 1},
		{ID: 2, Submit: 5, Run: 1, Est: 1, Procs: 1},
	}, Config{MaxProcs: 4, Policy: sched.FCFS()}); err == nil {
		t.Error("unsorted jobs accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero MaxProcs did not panic")
			}
		}()
		Run(nil, Config{Policy: sched.FCFS()})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil policy did not panic")
			}
		}()
		Run(nil, Config{MaxProcs: 4})
	}()
}

func TestEmptySequence(t *testing.T) {
	res := mustRun(t, nil, Config{MaxProcs: 4, Policy: sched.FCFS()})
	if len(res.Results) != 0 || res.Inspections != 0 {
		t.Errorf("empty run produced %+v", res)
	}
}

func TestFCFSOrderAndTimes(t *testing.T) {
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 4},
		{ID: 2, Submit: 10, Run: 50, Est: 50, Procs: 4},
		{ID: 3, Submit: 20, Run: 10, Est: 10, Procs: 4},
	}
	res := mustRun(t, jobs, Config{MaxProcs: 4, Policy: sched.FCFS()})
	wantStart := map[int]float64{1: 0, 2: 100, 3: 150}
	for _, r := range res.Results {
		if got := wantStart[r.ID]; r.Start != got {
			t.Errorf("job %d start %v, want %v", r.ID, r.Start, got)
		}
	}
	// SJF runs them shortest-first once all have arrived.
	res = mustRun(t, jobs, Config{MaxProcs: 4, Policy: sched.SJF()})
	byID := map[int]float64{}
	for _, r := range res.Results {
		byID[r.ID] = r.Start
	}
	// Job 1 starts at 0 (only job present). At t=100 both 2 and 3 wait: SJF
	// picks 3 (est 10), then 2.
	if byID[1] != 0 || byID[3] != 100 || byID[2] != 110 {
		t.Errorf("SJF starts = %v", byID)
	}
}

func TestPickTopTieBreakByID(t *testing.T) {
	jobs := []workload.Job{
		{ID: 7, Submit: 0, Run: 50, Est: 50, Procs: 2},
		{ID: 3, Submit: 0, Run: 50, Est: 50, Procs: 2},
	}
	// Occupy the cluster so both wait, then release.
	blocker := workload.Job{ID: 1, Submit: 0, Run: 10, Est: 10, Procs: 4}
	seq := append([]workload.Job{blocker}, jobs...)
	res := mustRun(t, seq, Config{MaxProcs: 4, Policy: sched.SJF()})
	var s3, s7 float64
	for _, r := range res.Results {
		if r.ID == 3 {
			s3 = r.Start
		}
		if r.ID == 7 {
			s7 = r.Start
		}
	}
	if !(s3 <= s7) {
		t.Errorf("tie not broken by smaller ID: job3 %v, job7 %v", s3, s7)
	}
}

func TestBlockingHeadNoBackfill(t *testing.T) {
	// Head job needs the whole cluster; a tiny job behind it must NOT start
	// when backfilling is disabled.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 3},
		{ID: 2, Submit: 1, Run: 100, Est: 100, Procs: 4}, // blocks on 1
		{ID: 3, Submit: 2, Run: 5, Est: 5, Procs: 1},     // could backfill
	}
	res := mustRun(t, jobs, Config{MaxProcs: 4, Policy: sched.FCFS()})
	byID := map[int]float64{}
	for _, r := range res.Results {
		byID[r.ID] = r.Start
	}
	if byID[2] != 100 {
		t.Errorf("job 2 start %v, want 100", byID[2])
	}
	if byID[3] < 200 {
		t.Errorf("job 3 backfilled at %v despite backfill disabled", byID[3])
	}
	if res.Backfills != 0 {
		t.Errorf("backfills = %d, want 0", res.Backfills)
	}
}

func TestEASYBackfill(t *testing.T) {
	// Same scenario with backfilling: job 3 (est 5) fits the 1 free proc and
	// finishes before job 2's shadow time (100), so it starts at its arrival.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 3},
		{ID: 2, Submit: 1, Run: 100, Est: 100, Procs: 4},
		{ID: 3, Submit: 2, Run: 5, Est: 5, Procs: 1},
	}
	res := mustRun(t, jobs, Config{MaxProcs: 4, Policy: sched.FCFS(), Backfill: true})
	byID := map[int]float64{}
	for _, r := range res.Results {
		byID[r.ID] = r.Start
	}
	if byID[3] != 2 {
		t.Errorf("job 3 start %v, want 2 (backfilled)", byID[3])
	}
	if byID[2] != 100 {
		t.Errorf("job 2 start %v, want 100 (not delayed by backfill)", byID[2])
	}
	if res.Backfills != 1 {
		t.Errorf("backfills = %d, want 1", res.Backfills)
	}
}

func TestBackfillMustNotDelayReservation(t *testing.T) {
	// A long narrow job must NOT backfill if it would overlap the shadow
	// time AND use more than the extra processors.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 3},
		{ID: 2, Submit: 1, Run: 100, Est: 100, Procs: 4}, // reservation at t=100
		{ID: 3, Submit: 2, Run: 500, Est: 500, Procs: 1}, // too long to fit window, 1 > extra(0)
	}
	res := mustRun(t, jobs, Config{MaxProcs: 4, Policy: sched.FCFS(), Backfill: true})
	byID := map[int]float64{}
	for _, r := range res.Results {
		byID[r.ID] = r.Start
	}
	if byID[2] != 100 {
		t.Errorf("reserved job delayed: start %v, want 100", byID[2])
	}
	if byID[3] < 200 {
		t.Errorf("job 3 started %v, must wait for job 2", byID[3])
	}
}

func TestBackfillExtraProcs(t *testing.T) {
	// Reservation leaves extra processors: a long job that fits within the
	// extra procs may backfill even though it outlives the shadow time.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 6},
		{ID: 2, Submit: 1, Run: 100, Est: 100, Procs: 8}, // shadow t=100, extra = (4+6)-8 = 2
		{ID: 3, Submit: 2, Run: 500, Est: 500, Procs: 2}, // fits extra
		{ID: 4, Submit: 3, Run: 500, Est: 500, Procs: 3}, // exceeds extra and window
	}
	res := mustRun(t, jobs, Config{MaxProcs: 10, Policy: sched.FCFS(), Backfill: true})
	byID := map[int]float64{}
	for _, r := range res.Results {
		byID[r.ID] = r.Start
	}
	if byID[3] != 2 {
		t.Errorf("job 3 (extra-fit) start %v, want 2", byID[3])
	}
	if byID[2] != 100 {
		t.Errorf("reserved job 2 start %v, want 100", byID[2])
	}
	if byID[4] < byID[2] {
		t.Errorf("job 4 start %v must not precede reserved job", byID[4])
	}
}

func TestRejectionRetryInterval(t *testing.T) {
	// One job, inspector rejects it 3 times, no other events: each retry
	// advances exactly MaxInterval.
	jobs := []workload.Job{{ID: 1, Submit: 0, Run: 10, Est: 10, Procs: 1}}
	res := mustRun(t, jobs, Config{
		MaxProcs: 4, Policy: sched.FCFS(), MaxInterval: 600,
		Inspector: func(s *State) bool { return s.Rejections < 3 },
	})
	if res.Results[0].Start != 1800 {
		t.Errorf("start = %v, want 1800 (3 rejections x 600s)", res.Results[0].Start)
	}
	if res.Rejections != 3 || res.Inspections != 4 {
		t.Errorf("rejections/inspections = %d/%d, want 3/4", res.Rejections, res.Inspections)
	}
	if math.Abs(res.IdleDelay-1800) > 1e-9 {
		t.Errorf("IdleDelay = %v, want 1800", res.IdleDelay)
	}
}

func TestRejectionCutShortByArrival(t *testing.T) {
	// A rejection's wait is cut short by the next arrival (scheduling point).
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 10, Est: 10, Procs: 1},
		{ID: 2, Submit: 100, Run: 5, Est: 5, Procs: 1},
	}
	res := mustRun(t, jobs, Config{
		MaxProcs: 4, Policy: sched.SJF(), MaxInterval: 600,
		Inspector: func(s *State) bool { return s.Job.ID == 1 && s.Rejections == 0 },
	})
	byID := map[int]float64{}
	for _, r := range res.Results {
		byID[r.ID] = r.Start
	}
	// Job 1 rejected at t=0; next scheduling point is the arrival at t=100;
	// there SJF picks job 2 (est 5), then job 1.
	if byID[2] != 100 {
		t.Errorf("job 2 start %v, want 100", byID[2])
	}
	if byID[1] != 100 {
		t.Errorf("job 1 start %v, want 100 (both fit)", byID[1])
	}
}

func TestMaxRejectionsCap(t *testing.T) {
	jobs := []workload.Job{{ID: 1, Submit: 0, Run: 10, Est: 10, Procs: 1}}
	always := func(s *State) bool { return true }
	res := mustRun(t, jobs, Config{
		MaxProcs: 4, Policy: sched.FCFS(), MaxInterval: 100, MaxRejections: 5,
		Inspector: always,
	})
	if res.Rejections != 5 {
		t.Errorf("rejections = %d, want capped 5", res.Rejections)
	}
	if res.Results[0].Start != 500 {
		t.Errorf("start = %v, want 500", res.Results[0].Start)
	}
	// After the cap the inspector is not even consulted.
	if res.Inspections != 5 {
		t.Errorf("inspections = %d, want 5 (capped job not consulted)", res.Inspections)
	}

	// MaxRejections < 0 disables rejections entirely.
	res = mustRun(t, jobs, Config{
		MaxProcs: 4, Policy: sched.FCFS(), MaxRejections: -1, Inspector: always,
	})
	if res.Rejections != 0 || res.Results[0].Start != 0 {
		t.Errorf("negative cap: rejections=%d start=%v", res.Rejections, res.Results[0].Start)
	}
}

func TestInspectorStateContents(t *testing.T) {
	var seen []State
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 3},
		{ID: 2, Submit: 5, Run: 60, Est: 60, Procs: 2},
		{ID: 3, Submit: 6, Run: 30, Est: 30, Procs: 1},
	}
	insp := func(s *State) bool {
		cp := *s
		cp.Queue = append([]QueueItem(nil), s.Queue...)
		seen = append(seen, cp)
		return false
	}
	mustRun(t, jobs, Config{MaxProcs: 4, Policy: sched.FCFS(), Inspector: insp})
	if len(seen) != 3 {
		t.Fatalf("inspections = %d, want 3", len(seen))
	}
	first := seen[0]
	if first.Job.ID != 1 || !first.Runnable || first.FreeProcs != 4 || first.TotalProcs != 4 {
		t.Errorf("first state wrong: %+v", first)
	}
	if first.JobWait != 0 || first.Rejections != 0 || len(first.Queue) != 0 {
		t.Errorf("first state bookkeeping wrong: %+v", first)
	}
	// Second decision: job 2 at t=5, job 1 running (1 proc free), job 3 not
	// yet in queue at decision time? It arrives at 6; job 2 decision happens
	// at t=5 with free=1 < 2 → not runnable... but free > 0 so a pick occurs.
	second := seen[1]
	if second.Job.ID != 2 || second.Runnable {
		t.Errorf("second state wrong: %+v", second)
	}
	if second.Now != 5 || second.FreeProcs != 1 {
		t.Errorf("second state time/procs wrong: %+v", second)
	}
}

func TestBackfillCountFeature(t *testing.T) {
	var counts []int
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 3},
		{ID: 2, Submit: 1, Run: 200, Est: 200, Procs: 4}, // head, blocks
		{ID: 3, Submit: 2, Run: 5, Est: 5, Procs: 1},     // backfillable
		{ID: 4, Submit: 3, Run: 400, Est: 400, Procs: 1}, // not (too long, no extra)
	}
	insp := func(s *State) bool {
		if s.Job.ID == 2 {
			counts = append(counts, s.BackfillCount)
		}
		return false
	}
	mustRun(t, jobs, Config{MaxProcs: 4, Policy: sched.FCFS(), Backfill: true, Inspector: insp})
	if len(counts) == 0 {
		t.Fatal("job 2 never inspected")
	}
	// At job 2's decision (t=1) only job 3 exists... it arrives at t=2, so
	// queue is empty then; count 0 is correct. Instead check a direct state:
	// the feature is exercised more deeply in the core package tests.
	for _, c := range counts {
		if c < 0 {
			t.Errorf("negative backfill count %d", c)
		}
	}

	// Without backfilling the feature must be 0.
	insp2 := func(s *State) bool {
		if s.BackfillCount != 0 || s.BackfillEnabled {
			t.Errorf("backfill features leak when disabled: %+v", s)
		}
		return false
	}
	mustRun(t, jobs, Config{MaxProcs: 4, Policy: sched.FCFS(), Inspector: insp2})
}

// checkInvariants replays the schedule and verifies that processor capacity
// is never exceeded and that every start respects submission.
func checkInvariants(t *testing.T, jobs []workload.Job, res Result, maxProcs int) {
	t.Helper()
	if len(res.Results) != len(jobs) {
		t.Fatalf("scheduled %d of %d jobs", len(res.Results), len(jobs))
	}
	seen := map[int]bool{}
	type ev struct {
		t     float64
		delta int
	}
	var evs []ev
	for _, r := range res.Results {
		if seen[r.ID] {
			t.Fatalf("job %d scheduled twice", r.ID)
		}
		seen[r.ID] = true
		if r.Start < r.Submit {
			t.Fatalf("job %d starts %v before submit %v", r.ID, r.Start, r.Submit)
		}
		if math.Abs(r.End-(r.Start+r.Run)) > 1e-9 {
			t.Fatalf("job %d end %v != start+run %v", r.ID, r.End, r.Start+r.Run)
		}
		evs = append(evs, ev{r.Start, r.Procs}, ev{r.End, -r.Procs})
	}
	sort.Slice(evs, func(i, k int) bool {
		if evs[i].t != evs[k].t {
			return evs[i].t < evs[k].t
		}
		return evs[i].delta < evs[k].delta // completions release before starts
	})
	used := 0
	for _, e := range evs {
		used += e.delta
		if used > maxProcs {
			t.Fatalf("capacity exceeded: %d > %d at t=%v", used, maxProcs, e.t)
		}
		if used < 0 {
			t.Fatalf("negative usage at t=%v", e.t)
		}
	}
}

func TestInvariantsAcrossPoliciesAndWorkloads(t *testing.T) {
	tr := workload.SDSCSP2Like(3000, 17)
	rng := rand.New(rand.NewSource(5))
	for _, pname := range sched.PaperPolicies() {
		p, _ := sched.ByName(pname)
		for _, backfill := range []bool{false, true} {
			jobs := tr.RandomWindow(rng, 256, 0, 0)
			res := mustRun(t, jobs, Config{MaxProcs: tr.MaxProcs, Policy: p, Backfill: backfill})
			checkInvariants(t, jobs, res, tr.MaxProcs)
		}
	}
}

func TestInvariantsWithRandomInspector(t *testing.T) {
	tr := workload.LublinTrace(2000, 23)
	rng := rand.New(rand.NewSource(9))
	insp := func(s *State) bool { return rng.Float64() < 0.3 }
	for i := 0; i < 5; i++ {
		jobs := tr.RandomWindow(rng, 200, 0, 0)
		res := mustRun(t, jobs, Config{
			MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: i%2 == 0, Inspector: insp,
		})
		checkInvariants(t, jobs, res, tr.MaxProcs)
		if res.Inspections == 0 {
			t.Error("inspector never consulted")
		}
	}
}

// Property: with arbitrary job shapes, the simulator terminates, schedules
// every job exactly once, and never oversubscribes the cluster — with and
// without an adversarial (always-reject) inspector.
func TestRunProperty(t *testing.T) {
	type spec struct {
		Submit uint16
		Run    uint16
		Procs  uint8
	}
	f := func(specs []spec, backfill bool) bool {
		if len(specs) > 64 {
			specs = specs[:64]
		}
		jobs := make([]workload.Job, 0, len(specs))
		for i, sp := range specs {
			jobs = append(jobs, workload.Job{
				ID:     i + 1,
				Submit: float64(sp.Submit % 10000),
				Run:    1 + float64(sp.Run%5000),
				Est:    1 + float64(sp.Run%5000),
				Procs:  1 + int(sp.Procs%16),
			})
		}
		sort.SliceStable(jobs, func(i, k int) bool { return jobs[i].Submit < jobs[k].Submit })
		res, err := Run(jobs, Config{
			MaxProcs: 16, Policy: sched.SJF(), Backfill: backfill,
			MaxInterval: 60, MaxRejections: 3,
			Inspector: func(s *State) bool { return true },
		})
		if err != nil {
			return false
		}
		if len(res.Results) != len(jobs) {
			return false
		}
		// replay capacity check
		type ev struct {
			t     float64
			delta int
		}
		var evs []ev
		for _, r := range res.Results {
			if r.Start < r.Submit {
				return false
			}
			evs = append(evs, ev{r.Start, r.Procs}, ev{r.End, -r.Procs})
		}
		sort.Slice(evs, func(i, k int) bool {
			if evs[i].t != evs[k].t {
				return evs[i].t < evs[k].t
			}
			return evs[i].delta < evs[k].delta
		})
		used := 0
		for _, e := range evs {
			used += e.delta
			if used > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRejectionRatio(t *testing.T) {
	if (Result{}).RejectionRatio() != 0 {
		t.Error("empty ratio not 0")
	}
	r := Result{Inspections: 10, Rejections: 3}
	if got := r.RejectionRatio(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("ratio = %v", got)
	}
}

func TestSlurmPolicyInSim(t *testing.T) {
	tr := workload.SDSCSP2Like(2000, 31)
	pol := sched.NewSlurm(tr)
	rng := rand.New(rand.NewSource(3))
	jobs := tr.RandomWindow(rng, 128, 0, 0)
	res := mustRun(t, jobs, Config{MaxProcs: tr.MaxProcs, Policy: pol, Backfill: true})
	checkInvariants(t, jobs, res, tr.MaxProcs)
	// Running again must reset fairshare accounting and reproduce the result.
	res2 := mustRun(t, jobs, Config{MaxProcs: tr.MaxProcs, Policy: pol, Backfill: true})
	for i := range res.Results {
		if res.Results[i] != res2.Results[i] {
			t.Fatalf("Slurm run not reproducible at %d: %+v vs %+v", i, res.Results[i], res2.Results[i])
		}
	}
}

func TestDeterminism(t *testing.T) {
	tr := workload.CTCSP2Like(2000, 8)
	rng := rand.New(rand.NewSource(4))
	jobs := tr.RandomWindow(rng, 256, 0, 0)
	cfg := Config{MaxProcs: tr.MaxProcs, Policy: sched.SAF(), Backfill: true}
	a := mustRun(t, jobs, cfg)
	b := mustRun(t, jobs, cfg)
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestResultSummary(t *testing.T) {
	jobs := []workload.Job{{ID: 1, Submit: 0, Run: 10, Est: 10, Procs: 2}}
	res := mustRun(t, jobs, Config{MaxProcs: 4, Policy: sched.FCFS()})
	s := res.Summary(4)
	if s.Jobs != 1 || s.AvgBSLD != 1 {
		t.Errorf("summary %+v", s)
	}
}
