package sim

import (
	"strings"
	"testing"

	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// traceJobs is a tiny deterministic sequence: J1 fills half the cluster,
// J2 arrives later and fits alongside, J3 needs the whole machine.
func traceJobs() []workload.Job {
	return []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 120, Procs: 2},
		{ID: 2, Submit: 10, Run: 50, Est: 60, Procs: 2},
		{ID: 3, Submit: 20, Run: 30, Est: 40, Procs: 4},
	}
}

func TestTracerEventLifecycle(t *testing.T) {
	tr := obs.NewTracer(128)
	res, err := Run(traceJobs(), Config{MaxProcs: 4, Policy: sched.FCFS(), Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("scheduled %d jobs", len(res.Results))
	}
	ev := tr.Events()
	counts := map[obs.EventKind]int{}
	starts := map[int]bool{}
	ends := map[int]bool{}
	var lastTime float64
	for _, e := range ev {
		counts[e.Kind]++
		if e.Time < lastTime {
			t.Fatalf("events out of order: %v after t=%v", e, lastTime)
		}
		lastTime = e.Time
		switch e.Kind {
		case obs.EventJobStart:
			starts[e.JobID] = true
		case obs.EventJobEnd:
			if !starts[e.JobID] {
				t.Errorf("job %d ended before starting", e.JobID)
			}
			ends[e.JobID] = true
		}
	}
	if counts[obs.EventJobStart] != 3 {
		t.Errorf("%d job_start events, want 3", counts[obs.EventJobStart])
	}
	// All three jobs start, so all three completions are eventually popped
	// only if the sim advances past them; the run ends when the last job
	// STARTS, so ends <= starts.
	if counts[obs.EventJobEnd] > counts[obs.EventJobStart] {
		t.Errorf("more ends (%d) than starts (%d)", counts[obs.EventJobEnd], counts[obs.EventJobStart])
	}
	if counts[obs.EventSchedPoint] < 3 {
		t.Errorf("%d sched_point events, want >= 3", counts[obs.EventSchedPoint])
	}
	// No inspector: no accept/reject events.
	if counts[obs.EventAccept] != 0 || counts[obs.EventReject] != 0 {
		t.Errorf("inspection events without inspector: %v", counts)
	}
}

func TestTracerInspectionEvents(t *testing.T) {
	tr := obs.NewTracer(0)
	rejectFirst := 0
	insp := func(s *State) bool {
		rejectFirst++
		return rejectFirst == 1 // reject exactly the first consulted decision
	}
	res, err := Run(traceJobs(), Config{MaxProcs: 4, Policy: sched.FCFS(), Inspector: insp, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejections != 1 {
		t.Fatalf("rejections %d", res.Rejections)
	}
	var accepts, rejects int
	for _, e := range tr.Events() {
		switch e.Kind {
		case obs.EventAccept:
			accepts++
		case obs.EventReject:
			rejects++
			if e.JobID != 1 || e.Rejections != 0 {
				t.Errorf("reject event %+v", e)
			}
		}
	}
	if rejects != 1 || accepts != res.Inspections-1 {
		t.Errorf("accepts %d rejects %d, inspections %d", accepts, rejects, res.Inspections)
	}
}

func TestTracerBackfillEvent(t *testing.T) {
	// J1 occupies most of the machine; FCFS commits to wide J2; J3 fits in
	// the leftover and finishes before J2's shadow time -> EASY backfills it.
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 3},
		{ID: 2, Submit: 1, Run: 50, Est: 50, Procs: 4},
		{ID: 3, Submit: 2, Run: 10, Est: 10, Procs: 1},
	}
	tr := obs.NewTracer(0)
	res, err := Run(jobs, Config{MaxProcs: 4, Policy: sched.FCFS(), Backfill: true, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backfills != 1 {
		t.Fatalf("backfills %d, want 1", res.Backfills)
	}
	found := false
	for _, e := range tr.Events() {
		if e.Kind == obs.EventBackfill {
			found = true
			if e.JobID != 3 {
				t.Errorf("backfill event for job %d, want 3", e.JobID)
			}
		}
	}
	if !found {
		t.Error("no backfill event traced")
	}
}

func TestTracerJSONLSinkFromSim(t *testing.T) {
	var buf strings.Builder
	tr := obs.NewTracer(4) // ring smaller than the event stream
	tr.SetSink(&buf)
	if _, err := Run(traceJobs(), Config{MaxProcs: 4, Policy: sched.SJF(), Tracer: tr}); err != nil {
		t.Fatal(err)
	}
	if err := tr.SinkErr(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if uint64(lines) != tr.Total() {
		t.Errorf("sink got %d lines, tracer emitted %d", lines, tr.Total())
	}
	if !strings.Contains(buf.String(), `"kind":"sched_point"`) {
		t.Errorf("sink output missing sched_point:\n%s", buf.String())
	}
}

// TestNilTracerUnchanged pins the fast path: a run with a nil tracer is
// byte-identical in results to the same run without the field set.
func TestNilTracerUnchanged(t *testing.T) {
	tr := workload.SDSCSP2Like(600, 11)
	jobs := tr.Window(0, 200)
	a, err := Run(jobs, Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(jobs, Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true, Tracer: nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != len(b.Results) || a.Backfills != b.Backfills {
		t.Fatal("nil tracer changed results")
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, a.Results[i], b.Results[i])
		}
	}
}
