// Package sim is an event-driven HPC cluster simulator, the Go equivalent
// of the SchedGym environment the paper extends (§3.2). It schedules a job
// sequence under a base policy, optionally consults an inspector at every
// scheduling decision, honors the MAX_INTERVAL retry cut-off and the
// MAX_REJECTION_TIMES cap, and supports EASY backfilling.
//
// Two runtimes are modeled per job: the actual runtime decides completions;
// the estimated runtime drives the policies, backfilling reservations and
// the inspector's view, exactly as §3.2 prescribes.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// Default hyperparameters from §4.1 of the paper.
const (
	DefaultMaxInterval   = 600.0 // seconds a rejected decision waits before retry, at most
	DefaultMaxRejections = 72    // rejections allowed per job
)

// Inspector scrutinizes one scheduling decision. Return true to reject the
// decision (the job goes back to the waiting queue and the base scheduler
// retries at the next scheduling point), false to let it proceed.
//
// The State passed in is reused between calls; implementations must copy
// anything they retain.
type Inspector func(s *State) bool

// State is the scheduling context handed to the inspector — the
// "Env. State" box of Figure 3.
type State struct {
	Now float64

	// The decision under inspection.
	Job        workload.Job // the job the base policy picked
	JobWait    float64      // how long it has waited so far
	Rejections int          // times this job has been rejected already

	// Cluster status.
	FreeProcs  int
	TotalProcs int
	Runnable   bool // Job.Procs <= FreeProcs

	// Backfilling context.
	BackfillEnabled bool
	BackfillCount   int // waiting jobs that could backfill right now

	// Waiting queue, excluding the inspected job.
	Queue []QueueItem
}

// QueueItem is the inspector-visible view of one waiting job.
type QueueItem struct {
	Wait  float64 // time in queue
	Est   float64 // estimated runtime
	Procs int
}

// Config parameterizes one simulation run.
type Config struct {
	MaxProcs      int          // cluster size; must be > 0
	Policy        sched.Policy // base scheduling policy; required
	Backfill      bool         // enable backfilling (EASY unless Conservative)
	Conservative  bool         // with Backfill: conservative (all-reservations) variant
	Inspector     Inspector    // optional; nil runs the base policy alone
	MaxInterval   float64      // retry cut-off; 0 means DefaultMaxInterval
	MaxRejections int          // per-job rejection cap; 0 means DefaultMaxRejections; <0 means none allowed
	TrackUsage    bool         // record the usage timeline (Result.Usage)
	Tracer        *obs.Tracer  // optional event tracer; nil (the default) costs one branch per event site
}

// Result is the outcome of a simulation run.
type Result struct {
	Results     []metrics.JobResult // one per job, in start order
	Inspections int                 // how many times the inspector was consulted
	Rejections  int                 // how many decisions it rejected
	Backfills   int                 // jobs started by backfilling
	IdleDelay   float64             // total time spent idling due to rejections
	Usage       []UsagePoint        // usage timeline (only with Config.TrackUsage)
}

// RejectionRatio returns rejections/inspections (0 if never consulted),
// the orange curves of Figures 7, 9 and 11.
func (r Result) RejectionRatio() float64 {
	if r.Inspections == 0 {
		return 0
	}
	return float64(r.Rejections) / float64(r.Inspections)
}

// Summary computes the metrics summary of the run.
func (r Result) Summary(maxProcs int) metrics.Summary {
	return metrics.Compute(r.Results, maxProcs)
}

// Run schedules the job sequence to completion and returns the results.
// The jobs slice is not modified. It panics on invalid configuration and
// returns an error for invalid jobs.
func Run(jobs []workload.Job, cfg Config) (Result, error) {
	if cfg.MaxProcs <= 0 {
		panic("sim: Config.MaxProcs must be positive")
	}
	if cfg.Policy == nil {
		panic("sim: Config.Policy is required")
	}
	if cfg.MaxInterval == 0 {
		cfg.MaxInterval = DefaultMaxInterval
	}
	if cfg.MaxRejections == 0 {
		cfg.MaxRejections = DefaultMaxRejections
	}
	if cfg.MaxRejections < 0 {
		cfg.MaxRejections = 0
	}
	for i := range jobs {
		if err := jobs[i].Validate(cfg.MaxProcs); err != nil {
			return Result{}, fmt.Errorf("sim: %w", err)
		}
		if i > 0 && jobs[i].Submit < jobs[i-1].Submit {
			return Result{}, fmt.Errorf("sim: jobs not sorted by submit at index %d", i)
		}
	}
	if r, ok := cfg.Policy.(sched.Resetter); ok {
		r.Reset()
	}
	s := &sim{
		cfg:     cfg,
		pending: jobs,
		free:    cfg.MaxProcs,
	}
	s.run()
	return s.out, nil
}

// waiting is a queued job plus its simulator bookkeeping.
type waiting struct {
	job     workload.Job
	rejects int
}

// runningJob tracks one executing job in the completion heap.
type runningJob struct {
	end    float64 // actual completion time
	estEnd float64 // estimated completion time (start + est)
	procs  int
	id     int
}

type runHeap []runningJob

func (h runHeap) Len() int           { return len(h) }
func (h runHeap) Less(i, k int) bool { return h[i].end < h[k].end }
func (h runHeap) Swap(i, k int)      { h[i], h[k] = h[k], h[i] }
func (h *runHeap) Push(x any)        { *h = append(*h, x.(runningJob)) }
func (h *runHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

type sim struct {
	cfg     Config
	pending []workload.Job // not yet arrived, sorted by submit
	queue   []waiting
	running runHeap
	free    int
	now     float64
	out     Result
	state   State // reused inspector state
}

func (s *sim) run() {
	s.ingestArrivals()
	s.recordUsage() // initial sample at t=0 for the usage timeline
	for {
		s.ingestArrivals()
		// A scheduling decision requires waiting jobs and at least one free
		// processor; a saturated cluster makes no picks (this matches the
		// paper's Figure 1 example, where J1 is not considered while the
		// cluster is full and loses to the later-arriving J2).
		if len(s.queue) == 0 || s.free == 0 {
			t, ok := s.nextEvent()
			if !ok {
				return // all jobs started; running ones have recorded results
			}
			s.advanceTo(t)
			continue
		}
		idx := s.pickTop()
		if t := s.cfg.Tracer; t != nil {
			w := &s.queue[idx]
			t.Emit(obs.Event{
				Kind: obs.EventSchedPoint, Time: s.now, JobID: w.job.ID, Procs: w.job.Procs,
				Wait: s.now - w.job.Submit, FreeProcs: s.free, QueueLen: len(s.queue),
			})
		}
		if s.rejectDecision(idx) {
			s.queue[idx].rejects++
			s.out.Rejections++
			before := s.now
			t := s.now + s.cfg.MaxInterval
			if e, ok := s.nextEvent(); ok && e < t {
				t = e
			}
			s.out.IdleDelay += t - before
			s.advanceTo(t)
			continue
		}
		s.scheduleJob(idx)
	}
}

// rejectDecision consults the inspector about the queue[idx] decision.
func (s *sim) rejectDecision(idx int) bool {
	if s.cfg.Inspector == nil {
		return false
	}
	w := &s.queue[idx]
	if w.rejects >= s.cfg.MaxRejections {
		return false // cap reached: the decision always proceeds (§3.2)
	}
	s.fillState(idx)
	s.out.Inspections++
	rejected := s.cfg.Inspector(&s.state)
	if t := s.cfg.Tracer; t != nil {
		kind := obs.EventAccept
		if rejected {
			kind = obs.EventReject
		}
		t.Emit(obs.Event{
			Kind: kind, Time: s.now, JobID: w.job.ID, Procs: w.job.Procs,
			Wait: s.now - w.job.Submit, FreeProcs: s.free, QueueLen: len(s.queue),
			Rejections: w.rejects,
		})
	}
	return rejected
}

// fillState refreshes the reusable inspector state for queue[idx].
func (s *sim) fillState(idx int) {
	w := &s.queue[idx]
	st := &s.state
	st.Now = s.now
	st.Job = w.job
	st.JobWait = s.now - w.job.Submit
	st.Rejections = w.rejects
	st.FreeProcs = s.free
	st.TotalProcs = s.cfg.MaxProcs
	st.Runnable = w.job.Procs <= s.free
	st.BackfillEnabled = s.cfg.Backfill
	st.BackfillCount = 0
	if s.cfg.Backfill {
		st.BackfillCount = s.countBackfillable(idx)
	}
	st.Queue = st.Queue[:0]
	for i := range s.queue {
		if i == idx {
			continue
		}
		q := &s.queue[i]
		st.Queue = append(st.Queue, QueueItem{
			Wait:  s.now - q.job.Submit,
			Est:   q.job.Est,
			Procs: q.job.Procs,
		})
	}
}

// pickTop returns the index of the queue job the base policy schedules
// next. Policies implementing sched.Selector choose directly from the
// queue; otherwise the pick is lowest score, ties broken by smaller job ID.
func (s *sim) pickTop() int {
	if sel, ok := s.cfg.Policy.(sched.Selector); ok {
		jobs := make([]workload.Job, len(s.queue))
		for i := range s.queue {
			jobs[i] = s.queue[i].job
		}
		if idx := sel.Select(jobs, s.now, s.free, s.cfg.MaxProcs); idx >= 0 && idx < len(s.queue) {
			return idx
		}
	}
	best := 0
	bestScore := s.cfg.Policy.Score(&s.queue[0].job, s.now)
	for i := 1; i < len(s.queue); i++ {
		sc := s.cfg.Policy.Score(&s.queue[i].job, s.now)
		if sc < bestScore || (sc == bestScore && s.queue[i].job.ID < s.queue[best].job.ID) {
			best, bestScore = i, sc
		}
	}
	return best
}

// scheduleJob commits to starting queue[idx]: immediately if resources
// allow, otherwise it reserves the job and waits for completions, running
// EASY backfilling meanwhile.
func (s *sim) scheduleJob(idx int) {
	if s.queue[idx].job.Procs <= s.free {
		s.startJob(idx)
		return
	}
	// The job cannot run yet. It holds a reservation; other queue jobs may
	// backfill around it until enough resources free up.
	reservedID := s.queue[idx].job.ID
	for {
		i := s.indexOf(reservedID)
		if s.queue[i].job.Procs <= s.free {
			s.startJob(i)
			return
		}
		if s.cfg.Backfill {
			if s.cfg.Conservative {
				s.backfillConservative(reservedID)
			} else {
				s.backfill(reservedID)
			}
			i = s.indexOf(reservedID)
			if s.queue[i].job.Procs <= s.free {
				s.startJob(i)
				return
			}
		}
		t, ok := s.nextEvent()
		if !ok {
			// Cannot happen with valid jobs: free < procs <= MaxProcs implies
			// something is running, so a completion event exists.
			panic("sim: reserved job starved with no future events")
		}
		s.advanceTo(t)
	}
}

// indexOf finds a queued job by ID. The queue is small; linear scan is fine.
func (s *sim) indexOf(id int) int {
	for i := range s.queue {
		if s.queue[i].job.ID == id {
			return i
		}
	}
	panic("sim: reserved job vanished from queue")
}

// startJob starts queue[idx] at the current time and removes it from the
// queue.
func (s *sim) startJob(idx int) {
	w := s.queue[idx]
	j := w.job
	if j.Procs > s.free {
		panic("sim: startJob without resources")
	}
	s.free -= j.Procs
	heap.Push(&s.running, runningJob{end: s.now + j.Run, estEnd: s.now + j.Est, procs: j.Procs, id: j.ID})
	s.out.Results = append(s.out.Results, metrics.JobResult{
		ID: j.ID, Submit: j.Submit, Start: s.now, End: s.now + j.Run,
		Run: j.Run, Est: j.Est, Procs: j.Procs,
	})
	if obs, ok := s.cfg.Policy.(sched.UsageObserver); ok {
		obs.ObserveStart(&j, s.now)
	}
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	if t := s.cfg.Tracer; t != nil {
		t.Emit(obs.Event{
			Kind: obs.EventJobStart, Time: s.now, JobID: j.ID, Procs: j.Procs,
			Wait: s.now - j.Submit, FreeProcs: s.free, QueueLen: len(s.queue),
		})
	}
	s.recordUsage()
}

// reservation computes the EASY shadow time and extra processors for the
// reserved job: the earliest time (by estimates) it could start, and how
// many processors would remain free at that time after it starts.
func (s *sim) reservation(reservedProcs int) (shadow float64, extra int) {
	if reservedProcs <= s.free {
		return s.now, s.free - reservedProcs
	}
	ends := make([]runningJob, len(s.running))
	copy(ends, s.running)
	// sort by estimated end; a running job that exceeded its estimate frees
	// its processors "now" for planning purposes (it may end any moment).
	for i := range ends {
		if ends[i].estEnd < s.now {
			ends[i].estEnd = s.now
		}
	}
	sortByEstEnd(ends)
	avail := s.free
	for _, r := range ends {
		avail += r.procs
		if avail >= reservedProcs {
			return r.estEnd, avail - reservedProcs
		}
	}
	// All estimates insufficient (cannot happen when procs <= MaxProcs).
	return math.Inf(1), 0
}

func sortByEstEnd(rs []runningJob) {
	// insertion sort: running sets are small and mostly ordered
	for i := 1; i < len(rs); i++ {
		for k := i; k > 0 && rs[k].estEnd < rs[k-1].estEnd; k-- {
			rs[k], rs[k-1] = rs[k-1], rs[k]
		}
	}
}

// backfill starts every waiting job (in base-policy order) that fits in the
// currently free processors and does not delay the reserved job's shadow
// start: it must either finish (by estimate) before the shadow time or use
// only the extra processors.
func (s *sim) backfill(reservedID int) {
	i := s.indexOf(reservedID)
	shadow, extra := s.reservation(s.queue[i].job.Procs)
	for {
		idx := s.pickBackfillable(reservedID, shadow, extra)
		if idx < 0 {
			return
		}
		procs := s.queue[idx].job.Procs
		if procs <= extra {
			extra -= procs
		}
		s.emitBackfill(idx)
		s.startJob(idx)
		s.out.Backfills++
	}
}

// emitBackfill traces that queue[idx] is about to start via backfilling
// (followed by its job_start event).
func (s *sim) emitBackfill(idx int) {
	t := s.cfg.Tracer
	if t == nil {
		return
	}
	j := &s.queue[idx].job
	t.Emit(obs.Event{
		Kind: obs.EventBackfill, Time: s.now, JobID: j.ID, Procs: j.Procs,
		Wait: s.now - j.Submit, FreeProcs: s.free, QueueLen: len(s.queue),
	})
}

// pickBackfillable returns the best-priority queue index eligible for
// backfilling, or -1.
func (s *sim) pickBackfillable(reservedID int, shadow float64, extra int) int {
	best := -1
	var bestScore float64
	for i := range s.queue {
		j := &s.queue[i].job
		if j.ID == reservedID || j.Procs > s.free {
			continue
		}
		if s.now+j.Est > shadow && j.Procs > extra {
			continue
		}
		sc := s.cfg.Policy.Score(j, s.now)
		if best < 0 || sc < bestScore || (sc == bestScore && j.ID < s.queue[best].job.ID) {
			best, bestScore = i, sc
		}
	}
	return best
}

// countBackfillable counts waiting jobs (excluding queue[idx]) that could
// backfill if queue[idx]'s decision proceeded — the "Backfilling
// Contributions" feature of §3.3. It is a static count against the current
// shadow window; no jobs are started.
func (s *sim) countBackfillable(idx int) int {
	shadow, extra := s.reservation(s.queue[idx].job.Procs)
	free := s.free
	if s.queue[idx].job.Procs <= s.free {
		free -= s.queue[idx].job.Procs // the job starts; others see the rest
	}
	n := 0
	for i := range s.queue {
		if i == idx {
			continue
		}
		j := &s.queue[i].job
		if j.Procs > free {
			continue
		}
		if s.now+j.Est <= shadow || j.Procs <= extra {
			n++
		}
	}
	return n
}

// nextEvent returns the earliest future event time (arrival or completion).
func (s *sim) nextEvent() (float64, bool) {
	t := math.Inf(1)
	if len(s.pending) > 0 {
		t = s.pending[0].Submit
	}
	if len(s.running) > 0 && s.running[0].end < t {
		t = s.running[0].end
	}
	if math.IsInf(t, 1) {
		return 0, false
	}
	return t, true
}

// advanceTo moves the clock to t, completing jobs and ingesting arrivals on
// the way.
func (s *sim) advanceTo(t float64) {
	if t < s.now {
		panic("sim: time going backwards")
	}
	s.now = t
	for len(s.running) > 0 && s.running[0].end <= t {
		r := heap.Pop(&s.running).(runningJob)
		s.free += r.procs
		if tr := s.cfg.Tracer; tr != nil {
			tr.Emit(obs.Event{
				Kind: obs.EventJobEnd, Time: r.end, JobID: r.id, Procs: r.procs,
				FreeProcs: s.free, QueueLen: len(s.queue),
			})
		}
	}
	s.ingestArrivals()
	s.recordUsage()
}

// ingestArrivals moves pending jobs submitted at or before now into the
// waiting queue.
func (s *sim) ingestArrivals() {
	for len(s.pending) > 0 && s.pending[0].Submit <= s.now {
		s.queue = append(s.queue, waiting{job: s.pending[0]})
		s.pending = s.pending[1:]
	}
}
