// Package sim is an event-driven HPC cluster simulator, the Go equivalent
// of the SchedGym environment the paper extends (§3.2). It schedules a job
// sequence under a base policy, optionally consults an inspector at every
// scheduling decision, honors the MAX_INTERVAL retry cut-off and the
// MAX_REJECTION_TIMES cap, and supports EASY backfilling.
//
// Two runtimes are modeled per job: the actual runtime decides completions;
// the estimated runtime drives the policies, backfilling reservations and
// the inspector's view, exactly as §3.2 prescribes.
//
// The simulator is exposed two ways. Env is the resumable core: a
// reset/step environment that yields control to the caller at every
// scheduling point, in the style of the step-based RL environments of
// RLScheduler and Decima. Run is the run-to-completion convenience built on
// top of it, driving an Env with the Config.Inspector callback.
package sim

import (
	"fmt"

	"schedinspector/internal/metrics"
	"schedinspector/internal/obs"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

// Default hyperparameters from §4.1 of the paper.
const (
	DefaultMaxInterval   = 600.0 // seconds a rejected decision waits before retry, at most
	DefaultMaxRejections = 72    // rejections allowed per job
)

// Inspector scrutinizes one scheduling decision. Return true to reject the
// decision (the job goes back to the waiting queue and the base scheduler
// retries at the next scheduling point), false to let it proceed.
//
// The State passed in is reused between calls; implementations must copy
// anything they retain.
type Inspector func(s *State) bool

// State is the scheduling context handed to the inspector — the
// "Env. State" box of Figure 3.
type State struct {
	Now float64

	// The decision under inspection.
	Job        workload.Job // the job the base policy picked
	JobWait    float64      // how long it has waited so far
	Rejections int          // times this job has been rejected already

	// Cluster status.
	FreeProcs  int
	TotalProcs int
	Runnable   bool // Job.Procs <= FreeProcs

	// Backfilling context.
	BackfillEnabled bool
	BackfillCount   int // waiting jobs that could backfill right now

	// Waiting queue, excluding the inspected job.
	Queue []QueueItem
}

// QueueItem is the inspector-visible view of one waiting job.
type QueueItem struct {
	Wait  float64 // time in queue
	Est   float64 // estimated runtime
	Procs int
}

// NewState assembles an inspector State from its raw components, deriving
// the Runnable bit. External integrations (the HTTP layer, tests) should
// construct states through it rather than field-by-field, so derived fields
// and future State growth have a single construction point.
func NewState(job workload.Job, wait float64, rejections, freeProcs, totalProcs int,
	backfillEnabled bool, backfillCount int, queue []QueueItem) *State {
	return &State{
		Job:             job,
		JobWait:         wait,
		Rejections:      rejections,
		FreeProcs:       freeProcs,
		TotalProcs:      totalProcs,
		Runnable:        job.Procs <= freeProcs,
		BackfillEnabled: backfillEnabled,
		BackfillCount:   backfillCount,
		Queue:           queue,
	}
}

// Config parameterizes one simulation run.
type Config struct {
	MaxProcs      int          // cluster size; must be > 0
	Policy        sched.Policy // base scheduling policy; required
	Backfill      bool         // enable backfilling (EASY unless Conservative)
	Conservative  bool         // with Backfill: conservative (all-reservations) variant
	Inspector     Inspector    // optional; nil runs the base policy alone (ignored by Env.Reset)
	MaxInterval   float64      // retry cut-off; 0 means DefaultMaxInterval
	MaxRejections int          // per-job rejection cap; 0 means DefaultMaxRejections; <0 means none allowed
	TrackUsage    bool         // record the usage timeline (Result.Usage)
	Tracer        *obs.Tracer  // optional event tracer; nil (the default) costs one branch per event site

	// Spans attaches the flight recorder's span tracer: every inspected
	// decision emits one span (opened at the yield, closed by Step) whose
	// wall duration is the caller's decision latency. SpanParent is the
	// enclosing span — the rollout engine sets it to the episode span so
	// traces nest run → epoch → episode → decision. Decision span IDs are
	// derived from (SpanParent, decision index), never from execution
	// order, so they are identical at any worker count. Nil Spans (the
	// default) costs one branch per decision.
	Spans      *obs.SpanTracer
	SpanParent obs.SpanID

	// Ring attaches the binary flight recorder: decision spans are encoded
	// straight into the arena-backed trace ring with zero per-decision
	// allocations — the production-cheap always-on variant of Spans. Both
	// may be set at once (each receives every span); nil (the default)
	// costs one branch per decision.
	Ring *obs.TraceRing

	// NoValidate skips the per-run job validation and sortedness check.
	// Set it when the jobs come from a pre-validated source — e.g. a
	// workload.Trace that already passed Validate — so hot paths that
	// replay the same window (the baseline cache) do not re-verify every
	// job on every run.
	NoValidate bool
}

// Result is the outcome of a simulation run.
type Result struct {
	Results     []metrics.JobResult // one per job, in start order
	Inspections int                 // how many times the inspector was consulted
	Rejections  int                 // how many decisions it rejected
	Backfills   int                 // jobs started by backfilling
	IdleDelay   float64             // total time spent idling due to rejections
	Usage       []UsagePoint        // usage timeline (only with Config.TrackUsage)
}

// RejectionRatio returns rejections/inspections (0 if never consulted),
// the orange curves of Figures 7, 9 and 11.
func (r Result) RejectionRatio() float64 {
	if r.Inspections == 0 {
		return 0
	}
	return float64(r.Rejections) / float64(r.Inspections)
}

// Summary computes the metrics summary of the run.
func (r Result) Summary(maxProcs int) metrics.Summary {
	return metrics.Compute(r.Results, maxProcs)
}

// ValidateJobs checks a job sequence for simulation validity: every job
// well-formed for a maxProcs cluster and the sequence sorted by submit
// time. It is the check Run performs on every call unless Config.NoValidate
// is set; callers that replay the same jobs repeatedly should validate once
// here and set NoValidate.
func ValidateJobs(jobs []workload.Job, maxProcs int) error {
	for i := range jobs {
		if err := jobs[i].Validate(maxProcs); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if i > 0 && jobs[i].Submit < jobs[i-1].Submit {
			return fmt.Errorf("sim: jobs not sorted by submit at index %d", i)
		}
	}
	return nil
}

// Run schedules the job sequence to completion and returns the results.
// The jobs slice is not modified. It panics on invalid configuration and
// returns an error for invalid jobs.
//
// Run is a thin loop over Env: it resets an environment and answers every
// yielded decision with cfg.Inspector (accepting everything, without
// consulting or counting, when the inspector is nil), which keeps the
// callback path and the caller-driven Env path bit-identical by
// construction.
func Run(jobs []workload.Job, cfg Config) (Result, error) {
	var env Env
	return RunEnv(&env, jobs, cfg)
}

// RunEnv is Run on a caller-owned environment, reusing its internal buffers
// across calls — the allocation-lean path for drivers that replay many
// windows (baseline caches, evaluation sweeps). The returned Result aliases
// env storage and is invalidated by the env's next Reset or RunEnv; callers
// retaining it across episodes must copy the Results and Usage slices.
func RunEnv(env *Env, jobs []workload.Job, cfg Config) (Result, error) {
	obs, done, err := env.reset(jobs, cfg, cfg.Inspector != nil)
	if err != nil {
		return Result{}, err
	}
	for !done {
		obs, done = env.Step(cfg.Inspector(obs))
	}
	return env.Result(), nil
}

// waiting is a queued job plus its simulator bookkeeping.
type waiting struct {
	job     workload.Job
	rejects int
}

// runningJob tracks one executing job in the completion heap.
type runningJob struct {
	end    float64 // actual completion time
	estEnd float64 // estimated completion time (start + est)
	procs  int
	id     int
}
