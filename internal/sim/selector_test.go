package sim

import (
	"testing"

	"schedinspector/internal/workload"
)

// fixedSelector always returns the configured index.
type fixedSelector struct {
	idx   int
	calls int
}

func (f *fixedSelector) Name() string                               { return "fixed" }
func (f *fixedSelector) Score(j *workload.Job, now float64) float64 { return float64(j.ID) }
func (f *fixedSelector) Select(q []workload.Job, now float64, free, total int) int {
	f.calls++
	return f.idx
}

func TestSelectorDrivesPick(t *testing.T) {
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 10, Est: 10, Procs: 1},
		{ID: 2, Submit: 0, Run: 10, Est: 10, Procs: 1},
		{ID: 3, Submit: 0, Run: 10, Est: 10, Procs: 1},
	}
	sel := &fixedSelector{idx: 2} // always pick the last queued job
	res, err := Run(jobs, Config{MaxProcs: 1, Policy: sel})
	if err != nil {
		t.Fatal(err)
	}
	if sel.calls == 0 {
		t.Fatal("Select never called")
	}
	// With 1 proc, jobs run sequentially; picking index 2 first means job 3
	// starts at t=0.
	for _, r := range res.Results {
		if r.ID == 3 && r.Start != 0 {
			t.Errorf("job 3 start %v, want 0 (selector pick)", r.Start)
		}
	}
}

func TestSelectorOutOfRangeFallsBack(t *testing.T) {
	jobs := []workload.Job{
		{ID: 5, Submit: 0, Run: 10, Est: 10, Procs: 1},
		{ID: 9, Submit: 0, Run: 10, Est: 10, Procs: 1},
	}
	sel := &fixedSelector{idx: 99} // invalid: simulator falls back to Score
	res, err := Run(jobs, Config{MaxProcs: 1, Policy: sel})
	if err != nil {
		t.Fatal(err)
	}
	// Score is the job ID, so job 5 (lower score) runs first.
	for _, r := range res.Results {
		if r.ID == 5 && r.Start != 0 {
			t.Errorf("fallback pick wrong: job 5 starts %v", r.Start)
		}
		if r.ID == 9 && r.Start != 10 {
			t.Errorf("fallback pick wrong: job 9 starts %v", r.Start)
		}
	}
}
