package sim

import (
	"math"
	"testing"

	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

func TestUsageTimeline(t *testing.T) {
	jobs := []workload.Job{
		{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 4},
		{ID: 2, Submit: 0, Run: 50, Est: 50, Procs: 4},
	}
	res, err := Run(jobs, Config{MaxProcs: 4, Policy: sched.FCFS(), TrackUsage: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Usage) == 0 {
		t.Fatal("no usage samples recorded")
	}
	// Timeline: [0,100) 4 used + 1 queued; [100,150) 4 used 0 queued;
	// horizon 150 → util = (4*150)/(4*150) = 1.
	if got := res.TimeWeightedUtil(4, 150); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("time-weighted util = %v, want 1.0", got)
	}
	// queue length: 1 for [0,100), 0 after → 100/150
	if got := res.TimeWeightedQueueLen(150); math.Abs(got-100.0/150) > 1e-9 {
		t.Errorf("time-weighted queue = %v, want %v", got, 100.0/150)
	}
	// monotone, deduplicated samples
	for i := 1; i < len(res.Usage); i++ {
		if res.Usage[i].Time < res.Usage[i-1].Time {
			t.Fatal("usage samples out of order")
		}
		if res.Usage[i] == res.Usage[i-1] {
			t.Fatal("duplicate usage sample")
		}
	}
}

func TestUsageTrackingOffByDefault(t *testing.T) {
	jobs := []workload.Job{{ID: 1, Submit: 0, Run: 10, Est: 10, Procs: 1}}
	res, err := Run(jobs, Config{MaxProcs: 4, Policy: sched.FCFS()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Usage != nil {
		t.Error("usage recorded without TrackUsage")
	}
	if res.TimeWeightedUtil(4, 100) != 0 || res.TimeWeightedQueueLen(100) != 0 {
		t.Error("aggregations over empty timeline should be 0")
	}
}

func TestUsageWithRejections(t *testing.T) {
	// One job rejected twice with a 100 s interval: the cluster idles for
	// 200 s, visible in the time-weighted utilization.
	jobs := []workload.Job{{ID: 1, Submit: 0, Run: 100, Est: 100, Procs: 4}}
	res, err := Run(jobs, Config{
		MaxProcs: 4, Policy: sched.FCFS(), MaxInterval: 100, TrackUsage: true,
		Inspector: func(s *State) bool { return s.Rejections < 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	// job runs [200, 300); util over [0,300) = 100/300
	if got := res.TimeWeightedUtil(4, 300); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("util with rejections = %v, want 1/3", got)
	}
}
