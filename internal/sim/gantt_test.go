package sim

import (
	"bytes"
	"strings"
	"testing"

	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

func TestWriteGantt(t *testing.T) {
	results := []metrics.JobResult{
		{ID: 1, Submit: 0, Start: 0, End: 50, Run: 50, Procs: 4},
		{ID: 2, Submit: 10, Start: 50, End: 100, Run: 50, Procs: 2},
	}
	var buf bytes.Buffer
	if err := WriteGantt(&buf, results, 4, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 2 jobs + occupancy:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "J1") || !strings.HasPrefix(lines[1], "J2") {
		t.Errorf("job ordering wrong:\n%s", out)
	}
	// Job 2 waited [10,50): its row must contain both '.' and '#'.
	if !strings.Contains(lines[1], ".") || !strings.Contains(lines[1], "#") {
		t.Errorf("waiting/running not rendered:\n%s", out)
	}
	// Job 1 never waited: no dots.
	if strings.Contains(lines[0], ".") {
		t.Errorf("job 1 should have no waiting cells:\n%s", out)
	}
	if !strings.Contains(lines[2], "occupancy") {
		t.Errorf("occupancy strip missing:\n%s", out)
	}
	// First half: 4/4 used → '9'; second half: 2/4 → '4'.
	strip := lines[2][strings.Index(lines[2], "|")+1:]
	strip = strip[:strings.Index(strip, "|")]
	if strip[0] != '9' || strip[len(strip)-1] != '4' {
		t.Errorf("occupancy deciles wrong: %q", strip)
	}
}

func TestWriteGanttEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteGantt(&buf, nil, 4, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty schedule not reported")
	}
	// zero-span schedule must not divide by zero
	buf.Reset()
	res := []metrics.JobResult{{ID: 1, Submit: 0, Start: 0, End: 0, Procs: 1}}
	if err := WriteGantt(&buf, res, 4, 5); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output for degenerate schedule")
	}
}

func TestWriteGanttFromSimulation(t *testing.T) {
	tr := workload.SDSCSP2Like(1000, 3)
	jobs := tr.Window(0, 40)
	res, err := Run(jobs, Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGantt(&buf, res.Results, tr.MaxProcs, 60); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 41 {
		t.Errorf("rendered %d lines, want 41", lines)
	}
}
