package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewAgentShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAgent(rng, 7, []int{32, 16, 8}, 2)
	if a.Policy.InputSize() != 7 || a.Policy.OutputSize() != 2 {
		t.Errorf("policy shape %d->%d", a.Policy.InputSize(), a.Policy.OutputSize())
	}
	if a.Value.OutputSize() != 1 {
		t.Errorf("value output %d", a.Value.OutputSize())
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid agent config did not panic")
		}
	}()
	NewAgent(rng, 0, nil, 2)
}

func TestSampleDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAgent(rng, 2, []int{8}, 2)
	obs := []float64{0.5, -0.5}
	p1 := a.ActionProb(obs, 1)
	n1 := 0
	const n = 20000
	for i := 0; i < n; i++ {
		act, logp := a.Sample(obs)
		if act == 1 {
			n1++
		}
		want := a.ActionProb(obs, act)
		if math.Abs(math.Exp(logp)-want) > 1e-9 {
			t.Fatalf("logp inconsistent: exp(%v)=%v want %v", logp, math.Exp(logp), want)
		}
	}
	if emp := float64(n1) / n; math.Abs(emp-p1) > 0.02 {
		t.Errorf("empirical P(a=1) = %v, policy says %v", emp, p1)
	}
}

func TestGreedyMatchesArgmax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAgent(rng, 3, []int{8}, 4)
	obs := []float64{1, 0, -1}
	g := a.Greedy(obs)
	best, bestP := 0, a.ActionProb(obs, 0)
	for k := 1; k < 4; k++ {
		if p := a.ActionProb(obs, k); p > bestP {
			best, bestP = k, p
		}
	}
	if g != best {
		t.Errorf("Greedy = %d, argmax prob = %d", g, best)
	}
}

func TestUpdateValidatesObsSize(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAgent(rng, 3, []int{4}, 2)
	ppo := NewPPO(a, PPOConfig{})
	_, err := ppo.Update([]Trajectory{{
		Steps:  []Step{{Obs: []float64{1, 2}, Action: 0, LogP: -0.7}},
		Reward: 1,
	}})
	if err == nil {
		t.Error("wrong obs size accepted")
	}
}

func TestUpdateEmptyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAgent(rng, 3, []int{4}, 2)
	ppo := NewPPO(a, PPOConfig{})
	st, err := ppo.Update(nil)
	if err != nil || st.Steps != 0 {
		t.Errorf("empty batch: %+v, %v", st, err)
	}
}

// contextual bandit: action must match the sign of the observation. The
// terminal reward is the fraction of correct choices — mirroring the sparse,
// sequence-level reward SchedInspector trains with.
func banditBatch(a *Agent, rng *rand.Rand, trajs, steps int) []Trajectory {
	batch := make([]Trajectory, trajs)
	for i := range batch {
		var tr Trajectory
		correct := 0
		for k := 0; k < steps; k++ {
			x := rng.Float64()*2 - 1
			obs := []float64{x}
			act, logp := a.Sample(obs)
			want := 0
			if x > 0 {
				want = 1
			}
			if act == want {
				correct++
			}
			tr.Steps = append(tr.Steps, Step{Obs: obs, Action: act, LogP: logp})
		}
		tr.Reward = float64(correct) / float64(steps)
		batch[i] = tr
	}
	return batch
}

func TestPPOLearnsContextualBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewAgent(rng, 1, []int{16, 8}, 2)
	ppo := NewPPO(a, PPOConfig{LR: 3e-3})
	var last UpdateStats
	for epoch := 0; epoch < 60; epoch++ {
		batch := banditBatch(a, rng, 16, 32)
		st, err := ppo.Update(batch)
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	if last.MeanReward < 0.9 {
		t.Errorf("PPO failed to learn bandit: final accuracy %v, want >= 0.9", last.MeanReward)
	}
	// Greedy policy should be essentially perfect.
	correct := 0
	const n = 1000
	for i := 0; i < n; i++ {
		x := rng.Float64()*2 - 1
		want := 0
		if x > 0 {
			want = 1
		}
		if a.Greedy([]float64{x}) == want {
			correct++
		}
	}
	if float64(correct)/n < 0.95 {
		t.Errorf("greedy accuracy %v, want >= 0.95", float64(correct)/n)
	}
}

func TestCriticLearnsBaseline(t *testing.T) {
	// Constant reward 0.7 regardless of action: the critic should converge
	// to it.
	rng := rand.New(rand.NewSource(8))
	a := NewAgent(rng, 1, []int{8}, 2)
	ppo := NewPPO(a, PPOConfig{LR: 5e-3})
	for epoch := 0; epoch < 40; epoch++ {
		var batch []Trajectory
		for i := 0; i < 8; i++ {
			var tr Trajectory
			for k := 0; k < 16; k++ {
				obs := []float64{rng.Float64()}
				act, logp := a.Sample(obs)
				tr.Steps = append(tr.Steps, Step{Obs: obs, Action: act, LogP: logp})
			}
			tr.Reward = 0.7
			batch = append(batch, tr)
		}
		if _, err := ppo.Update(batch); err != nil {
			t.Fatal(err)
		}
	}
	v := a.StateValue([]float64{0.5})
	if math.Abs(v-0.7) > 0.1 {
		t.Errorf("critic value %v, want ~0.7", v)
	}
}

func TestKLEarlyStopEngages(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewAgent(rng, 1, []int{8}, 2)
	// Huge LR forces big policy shifts; with a tight KL target, iterations
	// must stop well before the configured maximum.
	ppo := NewPPO(a, PPOConfig{LR: 0.1, PolicyIters: 50, TargetKL: 1e-4})
	batch := banditBatch(a, rng, 8, 16)
	st, err := ppo.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	if st.PolicyIters >= 50 {
		t.Errorf("KL early stop never engaged: %d iters", st.PolicyIters)
	}
}

func TestUpdateStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := NewAgent(rng, 1, []int{8}, 2)
	ppo := NewPPO(a, PPOConfig{})
	batch := banditBatch(a, rng, 4, 8)
	st, err := ppo.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 32 {
		t.Errorf("Steps = %d, want 32", st.Steps)
	}
	if st.Entropy <= 0 || st.Entropy > math.Log(2)+1e-9 {
		t.Errorf("entropy %v outside (0, ln2]", st.Entropy)
	}
	if st.ValueLoss < 0 {
		t.Errorf("negative value loss %v", st.ValueLoss)
	}
	if st.MeanReward < 0 || st.MeanReward > 1 {
		t.Errorf("mean reward %v outside [0,1]", st.MeanReward)
	}
}
