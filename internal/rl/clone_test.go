package rl

import (
	"math/rand"
	"testing"
)

// TestAgentCloneIndependence checks the snapshot property the parallel
// rollout engine relies on: a clone keeps producing the original's outputs
// even while the original is being optimized, and owns its scratch buffers.
func TestAgentCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAgent(rng, 3, []int{8}, 2)
	obs := []float64{0.2, -0.5, 0.9}

	clone := a.Clone(rand.New(rand.NewSource(2)))
	wantAct := a.Greedy(obs)
	wantProb := a.ActionProb(obs, wantAct)
	wantVal := a.StateValue(obs)

	// Mutate the original's weights, as a PPO update would.
	for _, w := range a.Policy.W {
		for i := range w {
			w[i] += 0.7
		}
	}
	for _, b := range a.Value.B {
		for i := range b {
			b[i] -= 1.3
		}
	}

	if got := clone.ActionProb(obs, wantAct); got != wantProb {
		t.Errorf("clone action prob drifted after original update: %v != %v", got, wantProb)
	}
	if got := clone.StateValue(obs); got != wantVal {
		t.Errorf("clone state value drifted after original update: %v != %v", got, wantVal)
	}

	// The clone samples from its own stream without touching the original's.
	if act, _ := clone.Sample(obs); act < 0 || act > 1 {
		t.Errorf("clone sampled out-of-range action %d", act)
	}

	// Reseed makes two clones of the same agent draw identical actions.
	c1 := a.Clone(nil)
	c2 := a.Clone(nil)
	c1.Reseed(rand.New(rand.NewSource(9)))
	c2.Reseed(rand.New(rand.NewSource(9)))
	for i := 0; i < 20; i++ {
		a1, l1 := c1.Sample(obs)
		a2, l2 := c2.Sample(obs)
		if a1 != a2 || l1 != l2 {
			t.Fatalf("reseeded clones diverged at draw %d: (%d, %v) vs (%d, %v)", i, a1, l1, a2, l2)
		}
	}
}
