package rl

import (
	"math/rand"
	"testing"
)

// TestNoCriticStillLearns verifies the REINFORCE-style ablation path: it
// should still solve the contextual bandit (the task is easy), while never
// training the critic.
func TestNoCriticStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := NewAgent(rng, 1, []int{16, 8}, 2)
	before := a.Value.Clone()
	ppo := NewPPO(a, PPOConfig{LR: 3e-3, NoCritic: true})
	var last UpdateStats
	for epoch := 0; epoch < 60; epoch++ {
		st, err := ppo.Update(banditBatch(a, rng, 16, 32))
		if err != nil {
			t.Fatal(err)
		}
		last = st
	}
	if last.MeanReward < 0.85 {
		t.Errorf("no-critic PPO accuracy %v, want >= 0.85", last.MeanReward)
	}
	if last.ValueLoss != 0 {
		t.Errorf("value loss %v reported with critic disabled", last.ValueLoss)
	}
	// critic parameters must be untouched
	for l := range before.W {
		for i := range before.W[l] {
			if a.Value.W[l][i] != before.W[l][i] {
				t.Fatal("critic weights changed despite NoCritic")
			}
		}
	}
}

// TestCriticReducesVariance compares epoch-reward variance with and without
// the baseline on a task with state-dependent reward offsets, mirroring the
// paper's §3.1 observation. The assertion is directional with a generous
// margin since both runs are stochastic.
func TestCriticReducesVariance(t *testing.T) {
	if testing.Short() {
		t.Skip("variance comparison skipped in -short mode")
	}
	variance := func(noCritic bool, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		a := NewAgent(rng, 1, []int{8}, 2)
		ppo := NewPPO(a, PPOConfig{LR: 1e-3, NoCritic: noCritic})
		var kls []float64
		for epoch := 0; epoch < 30; epoch++ {
			// reward has a large state-dependent component the critic can
			// absorb: base offset 2*obs plus the action-quality term.
			var batch []Trajectory
			for i := 0; i < 8; i++ {
				var tr Trajectory
				off := rng.Float64()
				for k := 0; k < 16; k++ {
					obs := []float64{off}
					act, logp := a.Sample(obs)
					tr.Steps = append(tr.Steps, Step{Obs: obs, Action: act, LogP: logp})
				}
				tr.Reward = 2*off + 0.1*rng.Float64()
				batch = append(batch, tr)
			}
			st, err := ppo.Update(batch)
			if err != nil {
				t.Fatal(err)
			}
			kls = append(kls, st.ApproxKL)
		}
		var mean, m2 float64
		for i, v := range kls {
			d := v - mean
			mean += d / float64(i+1)
			m2 += d * (v - mean)
		}
		return m2 / float64(len(kls))
	}
	// Average over a few seeds to stabilize the comparison.
	var with, without float64
	for s := int64(0); s < 3; s++ {
		with += variance(false, 100+s)
		without += variance(true, 100+s)
	}
	t.Logf("KL variance with critic %g, without %g", with, without)
	// The reward here is almost entirely state-dependent noise, so the
	// critic-less agent's policy updates should be at least as turbulent.
	if without < with/10 {
		t.Errorf("no-critic variance (%g) implausibly below actor-critic (%g)", without, with)
	}
}
