// Package rl implements the reinforcement-learning machinery SchedInspector
// trains with (§3, §4.1): a categorical actor-critic over two small MLPs and
// Proximal Policy Optimization with a clipped surrogate objective, entropy
// regularization and approximate-KL early stopping.
//
// Rewards are sparse: the paper holds intermediate rewards at zero and pays
// a single terminal reward per trajectory, so with an undiscounted horizon
// every step's return equals the trajectory's final reward; the critic
// supplies the variance-reducing baseline.
package rl

import (
	"fmt"
	"math"
	"math/rand"

	"schedinspector/internal/nn"
)

// Step is one agent interaction: an observation, the sampled action, and
// the log-probability the behavior policy assigned to it.
type Step struct {
	Obs    []float64
	Action int
	LogP   float64
}

// Trajectory is a full episode: its steps and the terminal reward.
type Trajectory struct {
	Steps  []Step
	Reward float64
}

// Agent is a categorical actor-critic.
type Agent struct {
	Policy *nn.MLP // obs -> action logits
	Value  *nn.MLP // obs -> scalar state value

	rng      *rand.Rand
	polCache nn.Cache
	valCache nn.Cache
	probs    []float64
}

// NewAgent builds an actor-critic pair. Both networks share the same hidden
// architecture (the paper's policy and value networks are identical): hidden
// layer sizes hidden, tanh activations, nActions policy logits and a scalar
// value head.
func NewAgent(rng *rand.Rand, obsDim int, hidden []int, nActions int) *Agent {
	if obsDim <= 0 || nActions < 2 {
		panic("rl: need positive obs dim and at least 2 actions")
	}
	polSizes := append(append([]int{obsDim}, hidden...), nActions)
	valSizes := append(append([]int{obsDim}, hidden...), 1)
	return &Agent{
		Policy: nn.New(rng, polSizes, nn.Tanh, nn.Identity),
		Value:  nn.New(rng, valSizes, nn.Tanh, nn.Identity),
		rng:    rng,
		probs:  make([]float64, nActions),
	}
}

// AgentFromNets wraps already-built policy and value networks in an agent
// without reinitializing any weights — the deserialization path (model
// files, training checkpoints). rng drives action sampling and may be nil
// when only Greedy, ActionProb or StateValue will be called.
func AgentFromNets(policy, value *nn.MLP, rng *rand.Rand) *Agent {
	if policy == nil || value == nil {
		panic("rl: AgentFromNets needs both networks")
	}
	return &Agent{
		Policy: policy,
		Value:  value,
		rng:    rng,
		probs:  make([]float64, policy.OutputSize()),
	}
}

// Clone returns an agent with deep-copied networks, private scratch
// buffers, and rng as its sampling stream — the read-only policy snapshot a
// rollout worker owns, which later optimizer steps on the original can
// never race with. rng may be nil when only Greedy, ActionProb or
// StateValue will be called; install one later with Reseed.
func (a *Agent) Clone(rng *rand.Rand) *Agent {
	return &Agent{
		Policy: a.Policy.Clone(),
		Value:  a.Value.Clone(),
		rng:    rng,
		probs:  make([]float64, len(a.probs)),
	}
}

// Reseed replaces the agent's sampling stream. The rollout engine uses it to
// hand every trajectory its own deterministic RNG derived from
// (seed, epoch, trajectory index).
func (a *Agent) Reseed(rng *rand.Rand) { a.rng = rng }

// Sample draws an action from the current policy and returns it with its
// log-probability.
func (a *Agent) Sample(obs []float64) (action int, logp float64) {
	logits := a.Policy.Forward(obs, &a.polCache)
	return SampleCategorical(a.rng, logits, a.probs)
}

// SampleCategorical draws one action from the categorical distribution the
// logits define, consuming exactly one rng.Float64, and returns it with its
// log-probability. probs is softmax scratch (len >= len(logits)). It is the
// sampling kernel shared by Agent.Sample and the batched rollout driver,
// which forwards whole decision waves at once and then samples each row
// from that row's private trajectory stream — factoring the kernel out
// guarantees the two paths consume RNG draws identically.
func SampleCategorical(rng *rand.Rand, logits, probs []float64) (action int, logp float64) {
	p := nn.Softmax(logits, probs)
	u := rng.Float64()
	action = len(p) - 1
	acc := 0.0
	for i, pi := range p {
		acc += pi
		if u <= acc {
			action = i
			break
		}
	}
	return action, math.Log(math.Max(p[action], 1e-12))
}

// SampleExplain is Sample with the policy's internals exported: it draws an
// action exactly as Sample does — same forward pass, same single rng.Float64
// — and additionally returns copies of the raw logits and the softmax
// probabilities, the flight recorder's explain payload. Interleaving
// SampleExplain and Sample calls on one agent leaves the RNG stream
// identical to calling Sample throughout.
func (a *Agent) SampleExplain(obs []float64) (action int, logp float64, logits, probs []float64) {
	lg := a.Policy.Forward(obs, &a.polCache)
	action, logp = SampleCategorical(a.rng, lg, a.probs)
	return action, logp,
		append([]float64(nil), lg...),
		append([]float64(nil), a.probs...)
}

// SampleExplainLogits is SampleExplain for a forward pass that already
// happened: it draws an action from precomputed logits — same
// SampleCategorical kernel, same single rng.Float64 — and returns an owned
// copy of the softmax probabilities. It is the per-row sampling kernel of
// the batched serving path, which forwards a whole decision wave with
// nn.MLP.ForwardBatch and then samples each row in order; interleaving it
// with Sample/SampleExplain leaves the RNG stream identical to calling
// SampleExplain throughout.
func (a *Agent) SampleExplainLogits(logits []float64) (action int, logp float64, probs []float64) {
	action, logp = SampleCategorical(a.rng, logits, a.probs)
	return action, logp, append([]float64(nil), a.probs...)
}

// GreedyExplain is Greedy with the policy's internals exported: the argmax
// action plus copies of the logits and softmax probabilities. It never
// touches the sampling RNG.
func (a *Agent) GreedyExplain(obs []float64) (action int, logits, probs []float64) {
	lg := a.Policy.Forward(obs, &a.polCache)
	p := nn.Softmax(lg, a.probs)
	action = 0
	for i := 1; i < len(lg); i++ {
		if lg[i] > lg[action] {
			action = i
		}
	}
	return action, append([]float64(nil), lg...), append([]float64(nil), p...)
}

// Greedy returns the argmax action of the current policy (inference mode).
func (a *Agent) Greedy(obs []float64) int {
	logits := a.Policy.Forward(obs, &a.polCache)
	best := 0
	for i := 1; i < len(logits); i++ {
		if logits[i] > logits[best] {
			best = i
		}
	}
	return best
}

// ActionProb returns the probability the policy assigns to action for obs.
func (a *Agent) ActionProb(obs []float64, action int) float64 {
	logits := a.Policy.Forward(obs, &a.polCache)
	return nn.Softmax(logits, a.probs)[action]
}

// StateValue returns the critic's value estimate for obs.
func (a *Agent) StateValue(obs []float64) float64 {
	return a.Value.Forward(obs, &a.valCache)[0]
}

// PPOConfig holds the optimization hyperparameters.
type PPOConfig struct {
	LR          float64 // Adam learning rate for both networks (paper: 1e-3)
	ClipRatio   float64 // PPO clipping epsilon (default 0.2)
	PolicyIters int     // gradient passes over the batch per update (default 10)
	ValueIters  int     // critic passes per update (default 10)
	TargetKL    float64 // early-stop threshold on approx KL (default 0.015)
	EntropyCoef float64 // entropy bonus weight (default 0.01)
	MaxGradNorm float64 // global-norm gradient clip (default 1.0)

	// NoCritic disables the value-network baseline: advantages are the raw
	// (normalized) returns and the critic is not trained. The paper's §3.1
	// reports high training variance in this configuration; the repository
	// keeps it as an ablation.
	NoCritic bool
}

func (c PPOConfig) withDefaults() PPOConfig {
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.ClipRatio == 0 {
		c.ClipRatio = 0.2
	}
	if c.PolicyIters == 0 {
		c.PolicyIters = 10
	}
	if c.ValueIters == 0 {
		c.ValueIters = 10
	}
	if c.TargetKL == 0 {
		c.TargetKL = 0.015
	}
	if c.EntropyCoef == 0 {
		c.EntropyCoef = 0.01
	}
	if c.MaxGradNorm == 0 {
		c.MaxGradNorm = 1.0
	}
	return c
}

// PPO optimizes an Agent from batches of trajectories.
type PPO struct {
	cfg    PPOConfig
	agent  *Agent
	polOpt *nn.Adam
	valOpt *nn.Adam
	polG   *nn.Grads
	valG   *nn.Grads
}

// NewPPO creates the optimizer for agent.
func NewPPO(agent *Agent, cfg PPOConfig) *PPO {
	cfg = cfg.withDefaults()
	return &PPO{
		cfg:    cfg,
		agent:  agent,
		polOpt: nn.NewAdam(agent.Policy, cfg.LR),
		valOpt: nn.NewAdam(agent.Value, cfg.LR),
		polG:   nn.NewGrads(agent.Policy),
		valG:   nn.NewGrads(agent.Value),
	}
}

// OptimizerState is the serializable state of both Adam optimizers — the
// part of a PPO trainer that outlives the network weights in a checkpoint.
type OptimizerState struct {
	Policy nn.AdamState
	Value  nn.AdamState
}

// OptimizerState deep-copies the current optimizer state for
// checkpointing.
func (p *PPO) OptimizerState() OptimizerState {
	return OptimizerState{Policy: p.polOpt.State(), Value: p.valOpt.State()}
}

// RestoreOptimizer installs a checkpointed optimizer state. Shapes must
// match the agent the PPO was built for.
func (p *PPO) RestoreOptimizer(s OptimizerState) error {
	if err := p.polOpt.Restore(s.Policy); err != nil {
		return fmt.Errorf("rl: policy optimizer: %w", err)
	}
	if err := p.valOpt.Restore(s.Value); err != nil {
		return fmt.Errorf("rl: value optimizer: %w", err)
	}
	return nil
}

// UpdateStats reports what one PPO update did.
type UpdateStats struct {
	Steps       int     // transitions in the batch
	MeanReward  float64 // mean terminal reward across trajectories
	RewardStd   float64 // standard deviation of terminal rewards
	ApproxKL    float64 // KL estimate at the last policy pass
	PolicyIters int     // passes actually run (early stop may cut them)
	PolicyLoss  float64 // clipped-surrogate loss (entropy bonus included) at the last pass
	ValueLoss   float64 // critic MSE after the update
	Entropy     float64 // mean policy entropy over the batch
}

// flatSample is one transition with its computed return and advantage.
type flatSample struct {
	obs  []float64
	act  int
	logp float64
	ret  float64
	adv  float64
}

// Update runs one PPO update over the batch and returns statistics.
func (p *PPO) Update(batch []Trajectory) (UpdateStats, error) {
	var flat []flatSample
	var stats UpdateStats
	for _, tr := range batch {
		stats.MeanReward += tr.Reward
		for _, s := range tr.Steps {
			if len(s.Obs) != p.agent.Policy.InputSize() {
				return stats, fmt.Errorf("rl: observation size %d, want %d", len(s.Obs), p.agent.Policy.InputSize())
			}
			// Undiscounted sparse terminal reward: every step's return is the
			// trajectory's final reward.
			flat = append(flat, flatSample{obs: s.Obs, act: s.Action, logp: s.LogP, ret: tr.Reward})
		}
	}
	if len(batch) > 0 {
		stats.MeanReward /= float64(len(batch))
		var rv float64
		for _, tr := range batch {
			d := tr.Reward - stats.MeanReward
			rv += d * d
		}
		stats.RewardStd = math.Sqrt(rv / float64(len(batch)))
	}
	if len(flat) == 0 {
		return stats, nil
	}
	stats.Steps = len(flat)

	// Advantages: return minus critic baseline (unless ablated), normalized
	// across the batch.
	var mean, m2 float64
	for i := range flat {
		flat[i].adv = flat[i].ret
		if !p.cfg.NoCritic {
			flat[i].adv -= p.agent.StateValue(flat[i].obs)
		}
		d := flat[i].adv - mean
		mean += d / float64(i+1)
		m2 += d * (flat[i].adv - mean)
	}
	std := math.Sqrt(m2/float64(len(flat))) + 1e-8
	for i := range flat {
		flat[i].adv = (flat[i].adv - mean) / std
	}

	stats.PolicyIters, stats.ApproxKL, stats.Entropy, stats.PolicyLoss = p.updatePolicy(flat)
	if !p.cfg.NoCritic {
		stats.ValueLoss = p.updateValue(flat)
	}
	return stats, nil
}

// updatePolicy runs clipped-surrogate passes with entropy bonus and KL early
// stopping. Returns passes run, final approximate KL, mean entropy, and the
// mean loss (clipped surrogate minus entropy bonus) of the last pass.
func (p *PPO) updatePolicy(flat []flatSample) (iters int, kl, entropy, loss float64) {
	nA := p.agent.Policy.OutputSize()
	dLogits := make([]float64, nA)
	probs := make([]float64, nA)
	var cache nn.Cache

	for iter := 0; iter < p.cfg.PolicyIters; iter++ {
		p.polG.Zero()
		var klSum, entSum, lossSum float64
		for i := range flat {
			s := &flat[i]
			logits := p.agent.Policy.Forward(s.obs, &cache)
			nn.Softmax(logits, probs)
			logpNew := math.Log(math.Max(probs[s.act], 1e-12))
			ratio := math.Exp(logpNew - s.logp)
			klSum += s.logp - logpNew
			clipped := math.Max(math.Min(ratio, 1+p.cfg.ClipRatio), 1-p.cfg.ClipRatio)
			lossSum += -math.Min(ratio*s.adv, clipped*s.adv)

			// Clipped surrogate: gradient flows only when unclipped.
			coef := 0.0
			if s.adv >= 0 && ratio < 1+p.cfg.ClipRatio || s.adv < 0 && ratio > 1-p.cfg.ClipRatio {
				coef = -ratio * s.adv // d(-surrogate)/d(logpNew)
			}

			var h float64
			for _, q := range probs {
				if q > 0 {
					h -= q * math.Log(q)
				}
			}
			entSum += h

			for k := 0; k < nA; k++ {
				ind := 0.0
				if k == s.act {
					ind = 1
				}
				// d logpNew / d logits_k = ind - p_k
				dLogits[k] = coef * (ind - probs[k])
				// entropy bonus: loss -= c*H, dH/dl_k = -p_k(log p_k + H)
				if probs[k] > 0 {
					dLogits[k] += p.cfg.EntropyCoef * probs[k] * (math.Log(probs[k]) + h)
				}
			}
			p.agent.Policy.Backward(&cache, dLogits, p.polG)
		}
		kl = klSum / float64(len(flat))
		entropy = entSum / float64(len(flat))
		loss = (lossSum - p.cfg.EntropyCoef*entSum) / float64(len(flat))
		iters = iter + 1
		if kl > 1.5*p.cfg.TargetKL && iter > 0 {
			break // stop before applying a step that drifts too far
		}
		p.polG.Scale(1 / float64(len(flat)))
		p.polG.ClipGlobalNorm(p.cfg.MaxGradNorm)
		p.polOpt.Step(p.agent.Policy, p.polG)
	}
	return iters, kl, entropy, loss
}

// updateValue fits the critic to the returns with MSE; returns final loss.
func (p *PPO) updateValue(flat []flatSample) float64 {
	var cache nn.Cache
	dOut := []float64{0}
	var loss float64
	for iter := 0; iter < p.cfg.ValueIters; iter++ {
		p.valG.Zero()
		loss = 0
		for i := range flat {
			s := &flat[i]
			v := p.agent.Value.Forward(s.obs, &cache)[0]
			d := v - s.ret
			loss += 0.5 * d * d
			dOut[0] = d
			p.agent.Value.Backward(&cache, dOut, p.valG)
		}
		loss /= float64(len(flat))
		p.valG.Scale(1 / float64(len(flat)))
		p.valG.ClipGlobalNorm(p.cfg.MaxGradNorm)
		p.valOpt.Step(p.agent.Value, p.valG)
	}
	return loss
}
