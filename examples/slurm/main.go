// Run SchedInspector on top of a Slurm-style multifactor priority
// scheduler, the paper's "realistic settings" study (§4.5).
//
// The multifactor policy combines job age, per-user fairshare, a
// job-attribute factor (requested time) and a per-queue partition factor,
// all weighted 1000, with EASY backfilling enabled — the closest the
// simulator gets to a production Slurm configuration. The inspector learns
// to reject some of its decisions and still improves bsld with a marginal
// utilization cost.
//
//	go run ./examples/slurm
package main

import (
	"fmt"
	"log"

	insp "schedinspector"
)

func main() {
	// The SDSC-SP2-like generator assigns Zipf-skewed users and queues, the
	// accounting data the multifactor policy needs.
	trace := insp.GenerateTrace("SDSC-SP2", 12000, 11)
	policy := insp.NewSlurm(trace)

	fmt.Println("training SchedInspector over Slurm multifactor + backfilling ...")
	trainer, err := insp.NewTrainer(insp.TrainConfig{
		Trace:    trace,
		Policy:   policy,
		Metric:   insp.BSLD,
		Backfill: true,
		Batch:    30,
		Seed:     8,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := trainer.Train(20, func(st insp.EpochStats) {
		if st.Epoch%5 == 0 {
			fmt.Printf("  epoch %2d: improvement %+.1f%%, rejection ratio %.2f\n",
				st.Epoch, 100*st.MeanPctImprovement, st.RejectionRatio)
		}
	}); err != nil {
		log.Fatal(err)
	}

	res, err := insp.Evaluate(trainer.Inspector(), insp.EvalConfig{
		Trace:     trace,
		Policy:    policy,
		Metric:    insp.BSLD,
		Backfill:  true,
		Sequences: 25,
		Seed:      13,
	})
	if err != nil {
		log.Fatal(err)
	}
	bsldB, bsldI := res.Boxes(insp.BSLD)
	utilB, utilI := res.Boxes(insp.Util)
	fmt.Printf("\nSlurm multifactor, %d test sequences:\n", bsldB.N)
	fmt.Printf("  bsld: base %.1f -> inspected %.1f (%+.1f%%)\n",
		bsldB.Mean, bsldI.Mean, 100*res.MeanImprovement(insp.BSLD))
	fmt.Printf("  util: base %.2f%% -> inspected %.2f%% (%+.2f%% absolute)\n",
		100*utilB.Mean, 100*utilI.Mean, 100*(utilI.Mean-utilB.Mean))
	fmt.Println("\n(the paper reports 24.7% better bsld at a 0.49% utilization cost)")
}
