// Inspect what a trained SchedInspector actually learned — the §5 analysis
// of the paper. Trains a model on [SJF, bsld, SDSC-SP2], replays the whole
// trace recording every inspection decision, and prints the empirical CDFs
// of each input feature over rejected samples vs all samples.
//
// Reading the output: where the "rejected" CDF rises faster than the
// "total" CDF, the model rejects more often at low values of that feature.
// The paper's findings — delay short-waiting, long-running, wide jobs; stop
// delaying once queue pressure is high — show up as exactly these gaps.
//
//	go run ./examples/whatlearned
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"schedinspector/internal/core"
	"schedinspector/internal/metrics"
	"schedinspector/internal/sched"
	"schedinspector/internal/workload"
)

func main() {
	trace := workload.SDSCSP2Like(12000, 42)

	fmt.Println("training SchedInspector on SJF / SDSC-SP2 / bsld ...")
	trainer, err := core.NewTrainer(core.TrainConfig{
		Trace: trace, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 40, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := trainer.Train(20, nil); err != nil {
		log.Fatal(err)
	}

	fmt.Println("replaying the whole trace with the trained model ...")
	rec, err := core.ReplayWhole(trainer.Inspector(), core.EvalConfig{
		Trace: trace, Policy: sched.SJF(), Metric: metrics.BSLD,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d inspection samples, %.1f%% rejected\n\n",
		len(rec.Records), 100*rec.RejectionRatio())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "feature\tCDF@0.2 tot/rej\tCDF@0.5 tot/rej\tCDF@0.8 tot/rej\treads as")
	for _, c := range rec.Analyze(core.ManualFeatureNames()) {
		if c.Rejected.N() == 0 {
			fmt.Fprintf(tw, "%s\t-\t-\t-\tnever causes rejection\n", c.Name)
			continue
		}
		verdict := "no clear preference"
		lowGap := c.Rejected.At(0.2) - c.Total.At(0.2)
		if lowGap > 0.05 {
			verdict = "rejects more when SMALL"
		} else if lowGap < -0.05 {
			verdict = "rejects more when LARGE"
		}
		fmt.Fprintf(tw, "%s\t%.2f/%.2f\t%.2f/%.2f\t%.2f/%.2f\t%s\n",
			c.Name,
			c.Total.At(0.2), c.Rejected.At(0.2),
			c.Total.At(0.5), c.Rejected.At(0.5),
			c.Total.At(0.8), c.Rejected.At(0.8),
			verdict)
	}
	tw.Flush()
	fmt.Println("\n(the paper finds: short waits, long runtimes and wide jobs get rejected;")
	fmt.Println(" both near-empty and near-full clusters see more rejections; high queue")
	fmt.Println(" delays shut rejections off entirely)")
}
