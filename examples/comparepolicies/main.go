// Compare base scheduling policies with and without SchedInspector.
//
// This is the workload the paper's introduction motivates: the same job
// stream scheduled by every Table 3 heuristic, showing which policies an
// inspector can improve (SJF, SAF, SRF, F1, LCFS) and which it cannot
// (FCFS — rejecting never changes what FCFS picks next, so the learned
// rejection ratio collapses).
//
//	go run ./examples/comparepolicies
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	insp "schedinspector"
)

func main() {
	trace := insp.GenerateTrace("SDSC-SP2", 10000, 9)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tbase bsld\tinspected bsld\timprovement\trejection ratio")

	for _, name := range []string{"FCFS", "LCFS", "SJF", "SAF", "SRF", "F1"} {
		policy, err := insp.PolicyByName(name)
		if err != nil {
			log.Fatal(err)
		}
		trainer, err := insp.NewTrainer(insp.TrainConfig{
			Trace:  trace,
			Policy: policy,
			Metric: insp.BSLD,
			Batch:  30,
			Seed:   2,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := trainer.Train(15, nil); err != nil {
			log.Fatal(err)
		}
		res, err := insp.Evaluate(trainer.Inspector(), insp.EvalConfig{
			Trace:     trace,
			Policy:    policy,
			Metric:    insp.BSLD,
			Sequences: 20,
			Seed:      3,
		})
		if err != nil {
			log.Fatal(err)
		}
		base, inspected := res.Boxes(insp.BSLD)
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%+.1f%%\t%.2f\n",
			name, base.Mean, inspected.Mean,
			100*res.MeanImprovement(insp.BSLD), res.RejectionRatio())
		tw.Flush()
	}
}
