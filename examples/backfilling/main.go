// Demonstrate EASY backfilling and how SchedInspector interacts with it.
//
// The example first shows, on a hand-built job sequence, how backfilling
// slots a short narrow job into the idle window in front of a blocked wide
// job. It then trains inspectors with backfilling disabled and enabled on
// the same workload, reproducing the paper's observation that backfilling
// shrinks — but does not eliminate — the inspector's headroom (§4.4.5).
//
//	go run ./examples/backfilling
package main

import (
	"fmt"
	"log"
	"os"

	insp "schedinspector"
	"schedinspector/internal/sim"
)

func main() {
	demonstrateEASY()
	compareHeadroom()
}

// demonstrateEASY schedules a tiny hand-built sequence with and without
// backfilling on an 8-processor cluster.
func demonstrateEASY() {
	jobs := []insp.Job{
		{ID: 1, Submit: 0, Run: 3600, Est: 3600, Procs: 6},  // running wide job
		{ID: 2, Submit: 60, Run: 3600, Est: 3600, Procs: 8}, /* blocks: needs whole cluster */
		{ID: 3, Submit: 120, Run: 600, Est: 600, Procs: 2},  // short+narrow: can backfill
	}
	for _, backfill := range []bool{false, true} {
		res, err := insp.Simulate(jobs, insp.SimConfig{
			MaxProcs: 8,
			Policy:   insp.FCFS(),
			Backfill: backfill,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("backfill=%v (%d backfilled):\n", backfill, res.Backfills)
		if err := sim.WriteGantt(os.Stdout, res.Results, 8, 60); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

// compareHeadroom trains one inspector without and one with backfilling.
func compareHeadroom() {
	trace := insp.GenerateTrace("SDSC-SP2", 10000, 5)
	for _, backfill := range []bool{false, true} {
		trainer, err := insp.NewTrainer(insp.TrainConfig{
			Trace:    trace,
			Policy:   insp.SJF(),
			Metric:   insp.BSLD,
			Backfill: backfill,
			Batch:    30,
			Seed:     4,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := trainer.Train(18, nil); err != nil {
			log.Fatal(err)
		}
		res, err := insp.Evaluate(trainer.Inspector(), insp.EvalConfig{
			Trace:     trace,
			Policy:    insp.SJF(),
			Metric:    insp.BSLD,
			Backfill:  backfill,
			Sequences: 20,
			Seed:      6,
		})
		if err != nil {
			log.Fatal(err)
		}
		base, inspected := res.Boxes(insp.BSLD)
		fmt.Printf("backfill=%-5v base bsld %7.1f -> inspected %7.1f (%+.1f%%)\n",
			backfill, base.Mean, inspected.Mean, 100*res.MeanImprovement(insp.BSLD))
	}
	fmt.Println("\nbackfilling already absorbs much of the idle time, so the")
	fmt.Println("inspector's improvement is smaller with it enabled — same shape as Figure 11.")
}
