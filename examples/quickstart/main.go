// Quickstart: train a small SchedInspector on top of SJF and show the
// bounded-slowdown improvement on held-out job sequences.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	insp "schedinspector"
)

func main() {
	// A synthetic workload calibrated to the SDSC-SP2 log: 128 processors,
	// bursty arrivals, heavy-tailed runtimes.
	trace := insp.GenerateTrace("SDSC-SP2", 12000, 42)

	// Train an inspector over the base SJF scheduler, optimizing the average
	// bounded job slowdown. The first 20% of the trace is the training set.
	trainer, err := insp.NewTrainer(insp.TrainConfig{
		Trace:  trace,
		Policy: insp.SJF(),
		Metric: insp.BSLD,
		Batch:  40, // trajectories per epoch (paper uses 100)
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training SchedInspector on SJF / SDSC-SP2 / bsld ...")
	if _, err := trainer.Train(30, func(st insp.EpochStats) {
		if st.Epoch%5 == 0 {
			fmt.Printf("  epoch %2d: bsld improvement %7.2f (%+5.1f%%), rejection ratio %.2f\n",
				st.Epoch, st.MeanImprovement, 100*st.MeanPctImprovement, st.RejectionRatio)
		}
	}); err != nil {
		log.Fatal(err)
	}

	// Evaluate on sequences sampled from the held-out 80% of the trace.
	res, err := insp.Evaluate(trainer.Inspector(), insp.EvalConfig{
		Trace:  trace,
		Policy: insp.SJF(),
		Metric: insp.BSLD,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	base, inspected := res.Boxes(insp.BSLD)
	fmt.Printf("\ntest-time bsld over %d sequences:\n", base.N)
	fmt.Printf("  base SJF:   mean %.1f (median %.1f)\n", base.Mean, base.Median)
	fmt.Printf("  inspected:  mean %.1f (median %.1f)\n", inspected.Mean, inspected.Median)
	fmt.Printf("  improvement %+.1f%% with %.0f%% of decisions rejected\n",
		100*res.MeanImprovement(insp.BSLD), 100*res.RejectionRatio())
}
