// Benchmarks mapping one-to-one onto the paper's tables and figures. Each
// BenchmarkTableN/BenchmarkFigN runs the corresponding experiment harness at
// a reduced scale per iteration — run `go test -bench=.` for the full sweep
// or `cmd/expreport` for the report-scale reproduction. The micro-benchmarks
// at the bottom cover §4.6 (inference and training cost) and the simulator
// substrate itself.
package schedinspector_test

import (
	"compress/gzip"
	"io"
	"math/rand"
	"os"
	"testing"

	insp "schedinspector"
	"schedinspector/internal/core"
	"schedinspector/internal/expt"
	"schedinspector/internal/metrics"
	"schedinspector/internal/nn"
	"schedinspector/internal/obs"
	"schedinspector/internal/rl"
	"schedinspector/internal/sched"
	"schedinspector/internal/sim"
	"schedinspector/internal/workload"
)

// benchExperiment runs one registry experiment per iteration at tiny scale.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	e, err := expt.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	o := expt.Tiny(io.Discard)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.ResetMemo() // each iteration trains for real, no cache hits
		if err := e.Run(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Motivating(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2TraceStats(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkFig4Training(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5Features(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6Rewards(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7Policies(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8TestEval(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkTable4CrossTrace(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkFig9Metrics(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10TradeOff(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11Backfill(b *testing.B)     { benchExperiment(b, "fig11") }
func BenchmarkTable5Utilization(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkFig12Slurm(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13WhatLearned(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkCostReport(b *testing.B)        { benchExperiment(b, "cost") }

// Extension experiments (ablations + RLScheduler integration).
func BenchmarkAblateInterval(b *testing.B) { benchExperiment(b, "ablate-interval") }
func BenchmarkAblateCap(b *testing.B)      { benchExperiment(b, "ablate-cap") }
func BenchmarkAblateCritic(b *testing.B)   { benchExperiment(b, "ablate-critic") }
func BenchmarkAblateBackfill(b *testing.B) { benchExperiment(b, "ablate-backfill") }
func BenchmarkRLSched(b *testing.B)        { benchExperiment(b, "rlsched") }

// BenchmarkInference measures the §4.6 per-decision inference cost: one
// greedy inspector decision, features included (the paper reports 0.7 ms on
// its Python stack).
func BenchmarkInference(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := workload.SDSCSP2Like(2000, 1)
	model := core.NewInspector(rng, core.ManualFeatures, core.NormalizerForTrace(tr, metrics.BSLD), nil)
	dec := model.Greedy()
	st := &sim.State{
		Job:     workload.Job{Est: 3600, Procs: 16},
		JobWait: 120, FreeProcs: 64, TotalProcs: 128, Runnable: true,
		Queue: []sim.QueueItem{
			{Wait: 60, Est: 600, Procs: 4},
			{Wait: 10, Est: 7200, Procs: 32},
			{Wait: 400, Est: 1800, Procs: 8},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec(st)
	}
}

// BenchmarkTrainingEpoch measures one full PPO epoch (trajectory sampling
// through the simulator plus the network update) at the paper's trajectory
// length.
func BenchmarkTrainingEpoch(b *testing.B) {
	tr := workload.SDSCSP2Like(6000, 3)
	trainer, err := core.NewTrainer(core.TrainConfig{
		Trace: tr, Policy: sched.SJF(), Metric: metrics.BSLD,
		Batch: 10, SeqLen: 128, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trainer.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures raw scheduling throughput: one 256-job
// sequence under SJF without an inspector.
func BenchmarkSimulator(b *testing.B) {
	tr := workload.SDSCSP2Like(4000, 7)
	jobs := tr.Window(100, 256)
	cfg := sim.Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(jobs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvStep measures the per-decision cost of the steppable Env
// core: one interactive 256-job episode per iteration on a reused
// environment, with a deterministic decision rule answering every yield.
// Steady state must be allocation-free (TestEnvStepAllocs in internal/sim
// pins it at exactly zero); the ns/decision metric is the figure the
// rollout drivers pay per scheduling decision.
func BenchmarkEnvStep(b *testing.B) {
	tr := workload.SDSCSP2Like(4000, 7)
	jobs := tr.Window(100, 256)
	cfg := sim.Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true}
	if err := sim.ValidateJobs(jobs, cfg.MaxProcs); err != nil {
		b.Fatal(err)
	}
	cfg.NoValidate = true
	env := sim.NewEnv()
	episode := func() int {
		st, done, err := env.Reset(jobs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		decisions := 0
		for !done {
			decisions++
			st, done = env.Step(st.Rejections < 2 && st.Job.ID%5 == 0)
		}
		return decisions
	}
	episode() // warm up the reusable buffers
	b.ReportAllocs()
	b.ResetTimer()
	decisions := 0
	for i := 0; i < b.N; i++ {
		decisions += episode()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(decisions), "ns/decision")
}

// BenchmarkSimulatorNilTracer is BenchmarkSimulator with the Tracer field
// explicitly nil: the guard for the tracing fast path. Disabled tracing is
// one nil check per event site, so this must stay within noise of
// BenchmarkSimulator.
func BenchmarkSimulatorNilTracer(b *testing.B) {
	tr := workload.SDSCSP2Like(4000, 7)
	jobs := tr.Window(100, 256)
	cfg := sim.Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Tracer: nil}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(jobs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorTraced measures the enabled-tracing cost: the same
// sequence recording every event into the bounded ring (no sink).
func BenchmarkSimulatorTraced(b *testing.B) {
	tr := workload.SDSCSP2Like(4000, 7)
	jobs := tr.Window(100, 256)
	cfg := sim.Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Tracer: obs.NewTracer(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(jobs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorBackfill is the same sequence with EASY backfilling.
func BenchmarkSimulatorBackfill(b *testing.B) {
	tr := workload.SDSCSP2Like(4000, 7)
	jobs := tr.Window(100, 256)
	cfg := sim.Config{MaxProcs: tr.MaxProcs, Policy: sched.SJF(), Backfill: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(jobs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLPForward measures one forward pass of the paper's
// 32/16/8-hidden policy network.
func BenchmarkMLPForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := nn.New(rng, []int{8, 32, 16, 8, 2}, nn.Tanh, nn.Identity)
	x := []float64{0.1, 0.5, 0.25, 0, 0.4, 0.5, 1, 0.2}
	var cache nn.Cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, &cache)
	}
}

// BenchmarkPPOUpdate measures one PPO update over a 1280-step batch (ten
// 128-job trajectories).
func BenchmarkPPOUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	agent := rl.NewAgent(rng, 8, core.DefaultHidden(), 2)
	ppo := rl.NewPPO(agent, rl.PPOConfig{})
	var batch []rl.Trajectory
	for t := 0; t < 10; t++ {
		var tr rl.Trajectory
		for s := 0; s < 128; s++ {
			obs := make([]float64, 8)
			for k := range obs {
				obs[k] = rng.Float64()
			}
			act, logp := agent.Sample(obs)
			tr.Steps = append(tr.Steps, rl.Step{Obs: obs, Action: act, LogP: logp})
		}
		tr.Reward = rng.Float64()*2 - 1
		batch = append(batch, tr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ppo.Update(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceGeneration measures synthetic-workload generation.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		workload.SDSCSP2Like(20000, int64(i))
	}
}

// BenchmarkLublinGeneration measures the Lublin-model generator.
func BenchmarkLublinGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		workload.LublinTrace(20000, int64(i))
	}
}

// TestPublicAPISurface is a compile-and-run check that the facade package
// exposes a working end-to-end path (tiny budget).
func TestPublicAPISurface(t *testing.T) {
	trace := insp.GenerateTrace("Lublin", 3000, 5)
	if err := trace.Validate(); err != nil {
		t.Fatal(err)
	}
	trainer, err := insp.NewTrainer(insp.TrainConfig{
		Trace: trace, Policy: insp.SJF(), Metric: insp.BSLD,
		Batch: 4, SeqLen: 64, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trainer.Train(2, nil); err != nil {
		t.Fatal(err)
	}
	res, err := insp.Evaluate(trainer.Inspector(), insp.EvalConfig{
		Trace: trace, Policy: insp.SJF(), Metric: insp.BSLD,
		Sequences: 3, SeqLen: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Base) != 3 {
		t.Fatalf("eval returned %d sequences", len(res.Base))
	}
	// model round trip through the facade
	path := t.TempDir() + "/m.gob"
	if err := trainer.Inspector().SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := insp.LoadInspectorFile(path, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeSimAndSWF covers the remaining facade surface: direct
// simulation, trace stats, SWF round trip through files, and the Slurm
// constructor.
func TestFacadeSimAndSWF(t *testing.T) {
	tr := insp.GenerateTrace("SDSC-SP2", 400, 9)
	if got := insp.ComputeTraceStats(tr); got.Jobs != 400 {
		t.Fatalf("stats jobs = %d", got.Jobs)
	}
	res, err := insp.Simulate(tr.Window(0, 50), insp.SimConfig{
		MaxProcs: tr.MaxProcs, Policy: insp.NewSlurm(tr), Backfill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 50 {
		t.Fatalf("simulated %d of 50", len(res.Results))
	}
	// The steppable facade: the same window driven decision by decision
	// through SimEnv must reproduce the straight-through run, and
	// SimulateEnv must match on a reused environment.
	env := insp.NewSimEnv()
	cfg := insp.SimConfig{MaxProcs: tr.MaxProcs, Policy: insp.SJF(), Backfill: true}
	_, done, err := env.Reset(tr.Window(0, 50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !done {
		_, done = env.Step(false) // accept everything = the base schedule
	}
	envSum := env.Result().Summary(tr.MaxProcs)
	if again, err := insp.SimulateEnv(env, tr.Window(0, 50), cfg); err != nil {
		t.Fatal(err)
	} else if got := again.Summary(tr.MaxProcs); got != envSum {
		t.Fatalf("SimulateEnv summary %+v != stepped env %+v", got, envSum)
	}
	path := t.TempDir() + "/t.swf.gz"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if err := insp.WriteSWF(gz, tr); err != nil {
		t.Fatal(err)
	}
	gz.Close()
	f.Close()
	got, err := insp.ParseSWFFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip %d jobs, want %d", got.Len(), tr.Len())
	}
	if len(insp.PaperTraces()) != 4 {
		t.Error("PaperTraces wrong")
	}
	if _, err := insp.PolicyByName("SRF"); err != nil {
		t.Error(err)
	}
	if _, err := insp.ParseMetric("mbsld"); err != nil {
		t.Error(err)
	}
}
