module schedinspector

go 1.22
