// Command inspectord serves a trained SchedInspector model over HTTP/JSON,
// the integration surface a production scheduler would call at each
// scheduling point (the paper's §7 Slurm-integration direction).
//
//	inspectord -model model.gob -addr :8642
//
// Endpoints:
//
//	POST /v1/inspect      — scheduling context in, {reject, reject_prob} out
//	                        (concurrent requests coalesce into decision
//	                        waves answered by one batched forward; tune
//	                        with -max-wave / -wave-timeout)
//	POST /v1/admin/reload — atomically hot-swap the model from disk
//	GET  /v1/info         — served model description
//	GET  /healthz         — alias of /v1/info
//	GET  /metrics         — Prometheus text exposition (requests, latency,
//	                        decision counters, reject ratio, model
//	                        generation and reload counters)
//	GET  /v1/trace/snapshot — dump the in-memory binary flight-recorder
//	                        ring (JSONL by default, ?format=ftrace for the
//	                        raw binary image)
//	GET  /v1/online/status — continual-learning loop state machine (only
//	                        with -online: window fill, retrains, shadow-eval
//	                        scores, promotions/rejections/rollbacks)
//	GET  /v1/online/history — bounded audit ring of candidate verdicts
//	                        (only with -online: both shadow-eval arms,
//	                        margin, promoted/rejected/rolled-back, the
//	                        generation each verdict produced)
//	GET  /debug/pprof     — CPU/heap/goroutine profiling (only with -pprof)
//
// -model accepts either a saved model (schedinspect train's model.gob) or
// a training checkpoint file (ckpt-*.ckpt) — checkpoints are servable
// directly, no export step. SIGHUP re-reads the model path and swaps the
// result in without dropping in-flight requests, same as the admin
// endpoint; a failed load keeps the current model serving.
//
// The process logs its effective sampling seed at startup (decisions are
// sampled from the policy, so the seed makes a served run reproducible),
// and drains in-flight requests on SIGINT/SIGTERM before exiting.
//
// Example request:
//
//	curl -s localhost:8642/v1/inspect -d '{
//	  "job": {"wait": 120, "est": 3600, "procs": 16},
//	  "free_procs": 32, "total_procs": 128,
//	  "queue": [{"wait": 60, "est": 600, "procs": 4}]
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"schedinspector/internal/core"
	"schedinspector/internal/obs"
	"schedinspector/internal/online"
	"schedinspector/internal/serve"
	"schedinspector/internal/version"
)

func main() {
	var (
		model      = flag.String("model", "model.gob", "trained model or checkpoint path (see schedinspect train)")
		addr       = flag.String("addr", ":8642", "listen address")
		seed       = flag.Int64("seed", 0, "decision-sampling seed (0 = time-based)")
		audit      = flag.String("audit", "", "append a JSONL decision audit log (request, features, verdict) to this file")
		auditMaxMB = flag.Int("audit-max-mb", 64, "rotate the audit log when it exceeds this many MiB, keeping one previous generation (0 = unlimited)")
		flight     = flag.String("flight", "", "stream the binary flight-recorder ring to this .ftrace file (decisions + proc samples; always queryable live at /v1/trace/snapshot)")
		procEvery  = flag.Duration("proc-interval", 30*time.Second, "runtime self-profiling snapshot interval (0 disables)")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		drainFor   = flag.Duration("drain", 10*time.Second, "graceful-shutdown timeout for in-flight requests")
		maxWave    = flag.Int("max-wave", serve.DefaultMaxWave, "max /v1/inspect decisions coalesced into one batched forward")
		waveWait   = flag.Duration("wave-timeout", 0, "how long the collector waits for stragglers to fill a decision wave (0 = forward immediately)")

		onlineOn        = flag.Bool("online", false, "enable the online continual-learning loop (tail decisions, retrain, shadow-evaluate, promote)")
		onlineInterval  = flag.Duration("online-interval", 30*time.Second, "online loop cycle interval")
		onlineMargin    = flag.Float64("online-margin", 0, "shadow-eval improvement a candidate must clear over the serving model to be promoted")
		onlineMinWindow = flag.Int("online-min-window", 512, "decisions required in the replay window before retraining starts")
		onlineDir       = flag.String("online-dir", "", "persist promoted candidates as checkpoints in this directory (servable via -model on restart)")
	)
	flag.Parse()

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	// Served decisions are sampled from the policy; logging the effective
	// seed makes a run reproducible even when it was time-derived.
	log.Printf("inspectord: decision-sampling seed %d", *seed)
	// One sampling stream for the process lifetime: reloaded models keep
	// drawing from it (on the handler's collector goroutine, the sole owner
	// of the served model), so a hot-swap does not rewind the decision
	// sequence. This is safe only because loading never draws from the
	// stream (LoadServable wires the networks in via rl.AgentFromNets, no
	// fresh initialization) — the reload path runs off the serving path,
	// and every actual draw happens on the collector.
	rng := rand.New(rand.NewSource(*seed))
	load := func() (*core.Inspector, error) { return core.LoadServable(*model, rng) }
	insp, err := load()
	if err != nil {
		log.Fatalf("inspectord: %v", err)
	}
	h := serve.NewHandlerOptions(insp, serve.Options{MaxWave: *maxWave, WaveTimeout: *waveWait})
	h.SetReloader(load)

	// SIGHUP hot-swaps the model from disk, mirroring /v1/admin/reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if resp, err := h.Reload(); err != nil {
				log.Printf("inspectord: SIGHUP reload failed, keeping current model: %v", err)
			} else {
				log.Printf("inspectord: SIGHUP reloaded %s (generation %d, %d params)",
					*model, resp.Generation, resp.Params)
			}
		}
	}()

	if *audit != "" {
		w, err := serve.NewRotatingWriter(*audit, int64(*auditMaxMB)<<20)
		if err != nil {
			log.Fatalf("inspectord: audit log: %v", err)
		}
		defer w.Close()
		h.SetAuditSink(w)
		if *auditMaxMB > 0 {
			log.Printf("inspectord: auditing decisions to %s (rotating at %d MiB)", *audit, *auditMaxMB)
		} else {
			log.Printf("inspectord: auditing decisions to %s", *audit)
		}
	}

	if *flight != "" {
		f, err := os.Create(*flight)
		if err != nil {
			log.Fatalf("inspectord: flight trace: %v", err)
		}
		defer f.Close()
		h.TraceRing().SetSink(f)
		defer func() {
			if err := h.TraceRing().Flush(); err != nil {
				log.Printf("inspectord: flight trace: %v", err)
			}
		}()
		log.Printf("inspectord: recording binary flight trace to %s", *flight)
	}

	version.Register(h.Registry(), insp.Mode.String())
	if *procEvery > 0 {
		ps := obs.NewProcSampler(obs.DefaultProcCap, h.Registry())
		// Runtime snapshots ride along in the decision trace, so an offline
		// .ftrace (or a /v1/trace/snapshot dump) correlates scheduling
		// decisions with the process's memory/GC/goroutine state.
		ps.TraceTo(h.TraceRing())
		stopProc := ps.Start(*procEvery)
		defer stopProc()
	}

	mux := http.NewServeMux()
	mux.Handle("/", h)

	// The online continual-learning loop: tail the flight ring into replay
	// windows, fine-tune candidates off the serving path, shadow-evaluate
	// against the serving model, and promote through the swap path. Every
	// failure mode keeps the current model serving.
	var stopOnline func()
	if *onlineOn {
		loop, err := online.New(online.Config{
			Source:      h.TraceRing(),
			Serving:     h,
			Registry:    h.Registry(),
			Interval:    *onlineInterval,
			Margin:      *onlineMargin,
			MinWindow:   *onlineMinWindow,
			PromotedDir: *onlineDir,
			Seed:        *seed,
			Logf:        log.Printf,
		})
		if err != nil {
			log.Fatalf("inspectord: %v", err)
		}
		mux.Handle("/v1/online/status", loop.StatusHandler())
		mux.Handle("/v1/online/history", loop.HistoryHandler())
		stopOnline = loop.Start(context.Background())
		log.Printf("inspectord: online continual learning enabled (interval %v, margin %+g, min window %d)",
			*onlineInterval, *onlineMargin, *onlineMinWindow)
	}

	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Printf("inspectord: pprof enabled on /debug/pprof/")
	}

	log.Printf("inspectord: %s serving %s model (%s features, cluster %d) on %s",
		version.String(), insp.Norm.Metric, insp.Mode, insp.Norm.MaxProcs, *addr)

	srv := &http.Server{Addr: *addr, Handler: mux}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("inspectord: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("inspectord: shutting down (draining up to %v)", *drainFor)
		shutCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Printf("inspectord: shutdown: %v", err)
			srv.Close()
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("inspectord: %v", err)
		}
		// Stop the online loop (cancelling any in-flight retrain) before
		// tearing down the decision-wave collector it promotes through.
		if stopOnline != nil {
			stopOnline()
		}
		// The HTTP server has drained; stop the decision-wave collector.
		h.Close()
		log.Printf("inspectord: stopped")
	}
}
