// Command inspectord serves a trained SchedInspector model over HTTP/JSON,
// the integration surface a production scheduler would call at each
// scheduling point (the paper's §7 Slurm-integration direction).
//
//	inspectord -model model.gob -addr :8642
//
// Endpoints:
//
//	POST /v1/inspect  — scheduling context in, {reject, reject_prob} out
//	GET  /v1/info     — served model description
//	GET  /healthz     — alias of /v1/info
//
// Example request:
//
//	curl -s localhost:8642/v1/inspect -d '{
//	  "job": {"wait": 120, "est": 3600, "procs": 16},
//	  "free_procs": 32, "total_procs": 128,
//	  "queue": [{"wait": 60, "est": 600, "procs": 4}]
//	}'
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"time"

	"schedinspector/internal/core"
	"schedinspector/internal/serve"
)

func main() {
	var (
		model = flag.String("model", "model.gob", "trained model path (see schedinspect train)")
		addr  = flag.String("addr", ":8642", "listen address")
		seed  = flag.Int64("seed", 0, "decision-sampling seed (0 = time-based)")
	)
	flag.Parse()

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	insp, err := core.LoadInspectorFile(*model, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatalf("inspectord: %v", err)
	}
	h := serve.NewHandler(insp)
	fmt.Printf("inspectord: serving %s model (%s features, cluster %d) on %s\n",
		insp.Norm.Metric, insp.Mode, insp.Norm.MaxProcs, *addr)
	log.Fatal(http.ListenAndServe(*addr, h))
}
