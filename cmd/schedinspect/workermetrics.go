package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"schedinspector/internal/obs"
)

// serveWorkerMetrics exposes a train-worker's registry at
// http://addr/metrics and returns a shutdown function that drains
// in-flight scrapes before the worker exits — the fleet poller must see
// a clean connection-refused after exit, not a torn exposition. Render
// failures, write failures, and a fatal Serve error all count into
// schedinspector_metrics_serve_errors_total so the fleet plane can alert
// on a worker whose own telemetry path is broken.
func serveWorkerMetrics(reg *obs.Registry, addr string, rank int) (shutdown func(), err error) {
	serveErrs := reg.Counter("schedinspector_metrics_serve_errors_total",
		"Failed renders or writes of the /metrics exposition.", nil)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", countingMetricsHandler(reg, serveErrs))
	srv := &http.Server{Handler: mux}
	go func() {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			serveErrs.Add(1)
			fmt.Fprintf(os.Stderr, "metrics-addr: %v\n", serr)
		}
	}()
	fmt.Fprintf(os.Stderr, "rank %d serving /metrics on %s\n", rank, ln.Addr())
	return func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
	}, nil
}

// countingMetricsHandler renders the whole exposition to a buffer before
// writing, so a mid-render registry error becomes a clean 500 (and a
// counter tick) instead of a torn 200 body.
func countingMetricsHandler(reg *obs.Registry, serveErrs *obs.Counter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		if err := reg.WriteProm(&buf); err != nil {
			serveErrs.Add(1)
			http.Error(w, "exposition render failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := w.Write(buf.Bytes()); err != nil {
			serveErrs.Add(1)
		}
	})
}
