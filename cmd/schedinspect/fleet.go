package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"schedinspector/internal/fleet"
)

// cmdFleet runs the fleet observability plane: scrape every configured
// schedinspector process, derive rates and quantiles, evaluate the health
// rules, and either serve the aggregate (dashboard + /v1/fleet +
// /metrics) or print it once and exit.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	targetsSpec := fs.String("targets", "", "comma-separated name=host:port targets to scrape")
	targetsFile := fs.String("targets-file", "", "file with one name=host:port target per line (#-comments ok)")
	interval := fs.Duration("interval", 2*time.Second, "scrape cycle interval")
	timeout := fs.Duration("timeout", 0, "per-target scrape timeout (default min(interval, 5s))")
	window := fs.Duration("window", time.Minute, "window for derived rates and quantiles")
	historyCap := fs.Int("history", fleet.DefaultHistoryCap, "scrapes retained per target")
	addr := fs.String("addr", "127.0.0.1:9099", "address for the dashboard, /v1/fleet, and /metrics")
	once := fs.Bool("once", false, "poll long enough to derive rates, print the fleet table, exit (non-zero if any target is down)")
	onceJSON := fs.Bool("json", false, "with -once, print the /v1/fleet JSON document instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		targets []fleet.Target
		err     error
	)
	switch {
	case *targetsSpec != "" && *targetsFile != "":
		return fmt.Errorf("fleet: -targets and -targets-file are mutually exclusive")
	case *targetsSpec != "":
		targets, err = fleet.ParseTargets(*targetsSpec)
	case *targetsFile != "":
		targets, err = fleet.LoadTargetsFile(*targetsFile)
	default:
		return fmt.Errorf("fleet: -targets or -targets-file is required")
	}
	if err != nil {
		return err
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	p := fleet.NewPoller(fleet.Config{
		Targets:    targets,
		Interval:   *interval,
		Timeout:    *timeout,
		Window:     *window,
		HistoryCap: *historyCap,
		Logf:       logger.Printf,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *once {
		return fleetOnce(ctx, p, *interval, *onceJSON)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: p.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	logger.Printf("fleet: watching %d targets, dashboard at http://%s/", len(targets), ln.Addr())

	go p.Run(ctx)
	select {
	case <-ctx.Done():
	case err := <-errc:
		return fmt.Errorf("fleet: serve: %w", err)
	}
	shctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	return srv.Shutdown(shctx)
}

// fleetOnce runs two scrape cycles one interval apart — the minimum for
// counter rates and windowed quantiles to exist — prints the aggregate,
// and exits non-zero when any target is down.
func fleetOnce(ctx context.Context, p *fleet.Poller, interval time.Duration, asJSON bool) error {
	p.RunOnce(ctx)
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(interval):
	}
	p.RunOnce(ctx)

	status := p.Status()
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(status); err != nil {
			return err
		}
	} else if err := fleet.WriteTable(os.Stdout, status); err != nil {
		return err
	}
	for _, t := range status.Targets {
		if !t.Up {
			return fmt.Errorf("fleet: target %s is down: %s", t.Name, t.LastErr)
		}
	}
	return nil
}
