// Command schedinspect trains, evaluates and inspects SchedInspector models
// from the command line.
//
// Subcommands:
//
//	schedinspect train -trace SDSC-SP2 -policy SJF -metric bsld -epochs 40 -model model.gob
//	schedinspect eval  -trace SDSC-SP2 -policy SJF -metric bsld -model model.gob
//	schedinspect stats -trace SDSC-SP2
//
// Traces are either one of the built-in synthetic workloads ("SDSC-SP2",
// "CTC-SP2", "HPC2N", "Lublin") or a Standard Workload Format file given
// with -swf.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	insp "schedinspector"
	"schedinspector/internal/core"
	"schedinspector/internal/dist"
	"schedinspector/internal/explain"
	"schedinspector/internal/obs"
	"schedinspector/internal/version"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:], false)
	case "train-worker":
		err = cmdTrain(os.Args[2:], true)
	case "eval":
		err = cmdEval(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "version":
		fmt.Println("schedinspect", version.String())
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "schedinspect: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedinspect:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  schedinspect train -trace NAME [-swf FILE] -policy SJF -metric bsld [-epochs N] [-batch N] [-workers N] [-backfill] [-telemetry OUT.csv] [-checkpoint-dir DIR [-checkpoint-every N] [-resume]] -model OUT.gob
  schedinspect train-worker -rank N -world M -peers ADDR0,ADDR1,... [train flags] -model OUT.gob
  schedinspect eval  -trace NAME [-swf FILE] -policy SJF -metric bsld [-sequences N] [-workers N] [-backfill] -model IN.gob
  schedinspect stats -trace NAME [-swf FILE]
  schedinspect inspect -trace NAME [-swf FILE] -policy SJF -model IN.gob
  schedinspect explain -in FLIGHT[.jsonl|.ftrace] [-convert OUT.jsonl | -job ID | -window T0:T1 | -top-rejected N | -feature-stats]
  schedinspect fleet -targets name=host:port,... | -targets-file FILE [-interval D] [-window D] [-addr HOST:PORT] [-once [-json]]
  schedinspect version

train and eval accept -flight OUT to record a decision flight trace (spans +
per-decision explain records) for schedinspect explain. With -flight-format
binary (or an .ftrace path) the trace records through the zero-allocation
arena-backed ring and is written as binary .ftrace; explain reads both
formats and -convert turns .ftrace into the equivalent JSONL.`)
}

// flightFlags adds the shared flight-recorder flags to fs.
func flightFlags(fs *flag.FlagSet) (path *string, format *string) {
	path = fs.String("flight", "", "record a decision flight trace (spans + explain records) to this file")
	format = fs.String("flight-format", "auto",
		"flight trace format: jsonl, binary (.ftrace ring), or auto (binary iff the path ends in .ftrace)")
	return
}

// openFlight builds the flight recorder for -flight and attaches the sink
// file. Binary mode records through the arena-backed TraceRing and writes
// .ftrace; JSONL mode is the legacy interleaved-lines sink.
func openFlight(path, format string) (*insp.FlightRecorder, *os.File, error) {
	binary := false
	switch format {
	case "auto":
		binary = strings.HasSuffix(path, ".ftrace")
	case "jsonl":
	case "binary":
		binary = true
	default:
		return nil, nil, fmt.Errorf("unknown -flight-format %q (want auto, jsonl or binary)", format)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	var rec *insp.FlightRecorder
	if binary {
		rec = insp.NewBinaryFlightRecorder(0, 0)
	} else {
		rec = insp.NewFlightRecorder(0, 0)
	}
	rec.SetSink(f)
	return rec, f, nil
}

// closeFlight flushes the recorder and surfaces the first sink error as the
// command's exit status.
func closeFlight(rec *insp.FlightRecorder, path string) error {
	if err := rec.Flush(); err != nil {
		return fmt.Errorf("flight trace: %w", err)
	}
	fmt.Printf("flight trace written to %s (inspect with: schedinspect explain -in %s)\n", path, path)
	return nil
}

// traceFlags adds the shared trace-selection flags to fs.
func traceFlags(fs *flag.FlagSet) (name *string, swf *string, jobs *int, seed *int64) {
	name = fs.String("trace", "SDSC-SP2", "built-in trace name (SDSC-SP2, CTC-SP2, HPC2N, Lublin)")
	swf = fs.String("swf", "", "load the trace from a Standard Workload Format file instead")
	jobs = fs.Int("jobs", 20000, "jobs to generate for built-in traces")
	seed = fs.Int64("seed", 42, "generator seed for built-in traces")
	return
}

func loadTrace(name, swf string, jobs int, seed int64) (*insp.Trace, error) {
	if swf == "" {
		return insp.GenerateTrace(name, jobs, seed), nil
	}
	return insp.ParseSWFFile(swf) // handles .gz transparently
}

func policyFor(name string, tr *insp.Trace) (insp.Policy, error) {
	if name == "Slurm" {
		return insp.NewSlurm(tr), nil
	}
	return insp.PolicyByName(name)
}

// cmdTrain implements both the single-process "train" subcommand and the
// distributed "train-worker" one (worker=true): the flows are identical —
// build config, resume, drive epochs, save the model — except that a
// worker adds the rank/world/peers flags and runs its epochs through the
// dist engine's exchange barrier. Every worker rank saves -model, and the
// bytes are identical across ranks and to a single-process run on the
// same seed/config (the property make dist-smoke diffs).
func cmdTrain(args []string, worker bool) error {
	cmdName := "train"
	if worker {
		cmdName = "train-worker"
	}
	fs := flag.NewFlagSet(cmdName, flag.ExitOnError)
	name, swf, jobs, seed := traceFlags(fs)
	polName := fs.String("policy", "SJF", "base scheduling policy (FCFS, LCFS, SJF, SQF, SAF, SRF, F1, Slurm)")
	metric := fs.String("metric", "bsld", "metric to optimize (bsld, wait, mbsld)")
	epochs := fs.Int("epochs", 40, "training epochs")
	batch := fs.Int("batch", 50, "trajectories per epoch")
	seqLen := fs.Int("seqlen", 128, "jobs per trajectory")
	backfill := fs.Bool("backfill", false, "enable EASY backfilling")
	features := fs.String("features", "manual", "feature mode (manual, compacted, native)")
	reward := fs.String("reward", "percentage", "reward function (percentage, native, winloss)")
	model := fs.String("model", "model.gob", "output model path")
	telemetry := fs.String("telemetry", "", "write per-epoch training telemetry to this file (.jsonl for JSON lines, otherwise CSV)")
	workers := fs.Int("workers", 0, "rollout worker goroutines (0 = one per CPU); results are identical at any count")
	ckptDir := fs.String("checkpoint-dir", "", "write durable training checkpoints to this directory (atomic, CRC-guarded)")
	ckptEvery := fs.Int("checkpoint-every", 10, "epochs between periodic checkpoints (with -checkpoint-dir)")
	ckptKeep := fs.Int("checkpoint-keep", 3, "checkpoint files to retain, oldest pruned first (0 = keep all)")
	resume := fs.Bool("resume", false, "resume from the latest valid checkpoint in -checkpoint-dir")
	flight, flightFormat := flightFlags(fs)
	var rank, world *int
	var peersList, network, metricsAddr *string
	var dialTimeout, exchangeTimeout *time.Duration
	if worker {
		rank = fs.Int("rank", 0, "this worker's rank in [0, world)")
		world = fs.Int("world", 2, "number of cooperating worker processes")
		peersList = fs.String("peers", "", "comma-separated listen addresses, one per rank in rank order")
		network = fs.String("network", "", "peer network: tcp, unix, or empty to infer per address")
		dialTimeout = fs.Duration("dial-timeout", 30*time.Second, "bound on establishing the peer mesh")
		exchangeTimeout = fs.Duration("exchange-timeout", 10*time.Minute, "bound on each per-epoch exchange barrier; must cover the slowest peer's rollout")
		metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics (dist exchange + rollout telemetry) on this address for a training-fleet dashboard")
	}
	fs.Parse(args)

	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	tr, err := loadTrace(*name, *swf, *jobs, *seed)
	if err != nil {
		return err
	}
	pol, err := policyFor(*polName, tr)
	if err != nil {
		return err
	}
	m, err := insp.ParseMetric(*metric)
	if err != nil {
		return err
	}
	var cfg insp.TrainConfig
	cfg.Trace, cfg.Policy, cfg.Metric = tr, pol, m
	cfg.Backfill = *backfill
	cfg.Batch, cfg.SeqLen, cfg.Seed = *batch, *seqLen, *seed
	cfg.Workers = *workers
	if worker {
		cfg.World, cfg.Rank = *world, *rank
		if *peersList != "" {
			cfg.Peers = strings.Split(*peersList, ",")
		}
	}
	if cfg.FeatureMode, err = parseFeatures(*features); err != nil {
		return err
	}
	if cfg.RewardKind, err = parseReward(*reward); err != nil {
		return err
	}
	// -metrics-addr turns a worker into a scrape target: the dist exchange
	// metrics plus the rollout telemetry its trainer already emits, on the
	// same Prometheus text endpoint inspectord serves. The listener is
	// opened before training so a bad address fails fast, and shut down
	// gracefully when the worker exits so in-flight scrapes drain instead
	// of tearing.
	var distMetrics *dist.Metrics
	if worker && *metricsAddr != "" {
		reg := obs.NewRegistry()
		distMetrics = dist.NewMetrics(reg)
		cfg.Metrics = core.NewRolloutMetrics(reg)
		version.Register(reg, *features)
		shutdownMetrics, err := serveWorkerMetrics(reg, *metricsAddr, *rank)
		if err != nil {
			return fmt.Errorf("metrics-addr: %w", err)
		}
		defer shutdownMetrics()
	}
	if *telemetry != "" {
		f, err := os.Create(*telemetry)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(*telemetry, ".jsonl") {
			cfg.Logger = core.NewJSONLTrainLogger(f)
		} else {
			cfg.Logger = core.NewCSVTrainLogger(f)
		}
	}
	var flightRec *insp.FlightRecorder
	if *flight != "" {
		rec, f, err := openFlight(*flight, *flightFormat)
		if err != nil {
			return err
		}
		defer f.Close()
		flightRec = rec
		cfg.Flight = flightRec
	}
	trainer, err := insp.NewTrainer(cfg)
	if err != nil {
		return err
	}
	remaining := *epochs
	if *resume {
		ck, err := trainer.ResumeLatest(*ckptDir)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
		remaining = *epochs - ck.Epoch
		fmt.Printf("resumed from checkpoint at epoch %d (%d epochs remaining)\n", ck.Epoch, max(remaining, 0))
		if remaining <= 0 {
			fmt.Printf("checkpoint already at or past -epochs %d; nothing to train\n", *epochs)
			return trainer.Inspector().SaveFile(*model)
		}
	}

	// SIGINT/SIGTERM finish the in-flight epoch, persist a checkpoint
	// (when -checkpoint-dir is set) and exit cleanly; a second signal
	// kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	t0 := time.Now()
	ck := core.CheckpointConfig{Dir: *ckptDir, Every: *ckptEvery, Keep: *ckptKeep}
	prefix := ""
	if worker {
		prefix = fmt.Sprintf("rank %d ", *rank)
	}
	progress := func(st insp.EpochStats) {
		fmt.Printf("%sepoch %3d/%d: improvement %9.2f (%+.1f%%), rejection ratio %.2f\n",
			prefix, st.Epoch, *epochs, st.MeanImprovement, 100*st.MeanPctImprovement, st.RejectionRatio)
	}
	if worker {
		_, err = dist.Train(ctx, trainer, remaining, ck, dist.Options{
			Network:         *network,
			DialTimeout:     *dialTimeout,
			ExchangeTimeout: *exchangeTimeout,
			Metrics:         distMetrics,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}, progress)
	} else {
		_, err = trainer.TrainCtx(ctx, remaining, ck, progress)
	}
	if errors.Is(err, core.ErrInterrupted) {
		stop()
		if *ckptDir != "" {
			fmt.Printf("interrupted; checkpoint saved in %s (resume with -resume)\n", *ckptDir)
			return nil
		}
		fmt.Println("interrupted (no -checkpoint-dir, progress discarded)")
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Printf("trained in %v\n", time.Since(t0).Round(time.Second))
	if err := trainer.Inspector().SaveFile(*model); err != nil {
		return err
	}
	fmt.Printf("model saved to %s\n", *model)
	if flightRec != nil {
		if err := closeFlight(flightRec, *flight); err != nil {
			return err
		}
	}
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	name, swf, jobs, seed := traceFlags(fs)
	polName := fs.String("policy", "SJF", "base scheduling policy")
	metric := fs.String("metric", "bsld", "metric to report (bsld, wait, mbsld, util)")
	sequences := fs.Int("sequences", 50, "sampled test sequences")
	seqLen := fs.Int("seqlen", 256, "jobs per test sequence")
	backfill := fs.Bool("backfill", false, "enable EASY backfilling")
	model := fs.String("model", "model.gob", "trained model path")
	workers := fs.Int("workers", 0, "rollout worker goroutines (0 = one per CPU); results are identical at any count")
	flight, flightFormat := flightFlags(fs)
	fs.Parse(args)

	tr, err := loadTrace(*name, *swf, *jobs, *seed)
	if err != nil {
		return err
	}
	pol, err := policyFor(*polName, tr)
	if err != nil {
		return err
	}
	m, err := insp.ParseMetric(*metric)
	if err != nil {
		return err
	}
	mod, err := insp.LoadInspectorFile(*model, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	// Rebind feature normalization to the evaluation trace (cross-trace use).
	mod = mod.WithNormalizer(insp.NormalizerForTrace(tr, m))
	evalCfg := insp.EvalConfig{
		Trace: tr, Policy: pol, Metric: m, Backfill: *backfill,
		Sequences: *sequences, SeqLen: *seqLen, Seed: *seed,
		Workers: *workers,
	}
	var flightRec *insp.FlightRecorder
	if *flight != "" {
		rec, f, err := openFlight(*flight, *flightFormat)
		if err != nil {
			return err
		}
		defer f.Close()
		flightRec = rec
		evalCfg.Flight = flightRec
	}
	res, err := insp.Evaluate(mod, evalCfg)
	if err != nil {
		return err
	}
	if flightRec != nil {
		if err := closeFlight(flightRec, *flight); err != nil {
			return err
		}
	}
	base, ins := res.Boxes(m)
	fmt.Printf("metric %s over %d sequences of %d jobs (%s, backfill=%v):\n",
		m, *sequences, *seqLen, pol.Name(), *backfill)
	fmt.Printf("  base:      %v\n", base)
	fmt.Printf("  inspected: %v\n", ins)
	fmt.Printf("  mean improvement: %+.1f%%, rejection ratio %.2f\n",
		100*res.MeanImprovement(m), res.RejectionRatio())
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	name, swf, jobs, seed := traceFlags(fs)
	fs.Parse(args)
	tr, err := loadTrace(*name, *swf, *jobs, *seed)
	if err != nil {
		return err
	}
	s := insp.ComputeTraceStats(tr)
	fmt.Printf("trace %s: %d jobs, cluster %d procs\n", tr.Name, s.Jobs, s.MaxProcs)
	fmt.Printf("  mean arrival interval: %.0f s\n", s.MeanInterval)
	fmt.Printf("  mean estimated runtime: %.0f s (max %.0f)\n", s.MeanEst, s.MaxEst)
	fmt.Printf("  mean actual runtime: %.0f s\n", s.MeanRun)
	fmt.Printf("  mean requested procs: %.1f (max %d)\n", s.MeanProcs, s.MaxJobProcs)
	fmt.Printf("  span: %.1f days\n", s.TotalSpan/86400)
	return nil
}

// cmdInspect replays the whole trace with a trained model and prints the
// per-feature rejection analysis of §5 of the paper.
func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	name, swf, jobs, seed := traceFlags(fs)
	polName := fs.String("policy", "SJF", "base scheduling policy")
	metric := fs.String("metric", "bsld", "metric the model was trained for")
	backfill := fs.Bool("backfill", false, "enable EASY backfilling")
	model := fs.String("model", "model.gob", "trained model path")
	fs.Parse(args)

	tr, err := loadTrace(*name, *swf, *jobs, *seed)
	if err != nil {
		return err
	}
	pol, err := policyFor(*polName, tr)
	if err != nil {
		return err
	}
	m, err := insp.ParseMetric(*metric)
	if err != nil {
		return err
	}
	mod, err := insp.LoadInspectorFile(*model, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	mod = mod.WithNormalizer(insp.NormalizerForTrace(tr, m))
	rec, err := core.ReplayWhole(mod, core.EvalConfig{
		Trace: tr, Policy: pol, Metric: m, Backfill: *backfill,
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d jobs: %d inspections, %.1f%% rejected\n",
		tr.Len(), len(rec.Records), 100*rec.RejectionRatio())
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "feature\tCDF@0.25 tot/rej\tCDF@0.5 tot/rej\tCDF@0.75 tot/rej")
	for _, c := range rec.Analyze(core.ManualFeatureNames()) {
		if c.Rejected.N() == 0 {
			fmt.Fprintf(tw, "%s\t-\t-\t-\n", c.Name)
			continue
		}
		fmt.Fprintf(tw, "%s\t%.2f/%.2f\t%.2f/%.2f\t%.2f/%.2f\n", c.Name,
			c.Total.At(0.25), c.Rejected.At(0.25),
			c.Total.At(0.5), c.Rejected.At(0.5),
			c.Total.At(0.75), c.Rejected.At(0.75))
	}
	return tw.Flush()
}

// cmdExplain queries a recorded decision flight trace: the offline half of
// the flight recorder, answering "why was job X rejected" from the JSONL or
// binary .ftrace file a train/eval -flight run (or inspectord) wrote. The
// format is sniffed from the file's leading bytes, so every query flag works
// on both. -convert decodes a binary trace to the canonical JSONL.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	in := fs.String("in", "flight.jsonl", "flight-recorder trace to read (JSONL or binary .ftrace, sniffed)")
	convert := fs.String("convert", "", "convert a binary .ftrace trace to flight-recorder JSONL at this path (\"-\" for stdout)")
	job := fs.Int("job", -1, "print every decision about this job ID")
	window := fs.String("window", "", "print decisions in a simulation-time window T0:T1 (seconds)")
	topRejected := fs.Int("top-rejected", 0, "print the N most-rejected jobs")
	featureStats := fs.Bool("feature-stats", false, "print per-feature accept/reject means and deltas (the §5 reject attribution)")
	fs.Parse(args)

	if *convert != "" {
		return convertTrace(*in, *convert)
	}
	tr, err := explain.ReadTraceFile(*in)
	if err != nil {
		return err
	}
	switch {
	case *job >= 0:
		recs := tr.JobTimeline(*job)
		if len(recs) == 0 {
			fmt.Printf("no decisions about job %d in %s\n", *job, *in)
			return nil
		}
		return explain.WriteRecords(os.Stdout, recs)
	case *window != "":
		t0s, t1s, ok := strings.Cut(*window, ":")
		if !ok {
			return fmt.Errorf("-window wants T0:T1, got %q", *window)
		}
		t0, err0 := strconv.ParseFloat(t0s, 64)
		t1, err1 := strconv.ParseFloat(t1s, 64)
		if err0 != nil || err1 != nil || t1 <= t0 {
			return fmt.Errorf("-window wants numeric T0:T1 with T1 > T0, got %q", *window)
		}
		return explain.WriteRecords(os.Stdout, tr.Window(t0, t1))
	case *topRejected > 0:
		return explain.WriteTopRejected(os.Stdout, tr.TopRejected(*topRejected))
	case *featureStats:
		stats, acc, rej := tr.FeatureStats()
		return explain.WriteFeatureStats(os.Stdout, stats, acc, rej)
	default:
		rejects := 0
		for _, r := range tr.Records {
			if r.Rejected {
				rejects++
			}
		}
		mode := "(no header)"
		if tr.Header != nil {
			mode = tr.Header.Mode
		}
		fmt.Printf("%s: %d decisions (%d rejected), %d spans, %s features\n",
			*in, len(tr.Records), rejects, len(tr.Spans), mode)
		fmt.Println("use -job, -window, -top-rejected or -feature-stats to drill in")
		return nil
	}
}

// convertTrace decodes a binary .ftrace flight trace to the canonical
// flight-recorder JSONL. A corrupt or truncated input converts the valid
// prefix and then reports the error (non-zero exit), so partial recoveries
// are kept but never mistaken for complete traces.
func convertTrace(in, out string) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	w := os.Stdout
	if out != "-" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if err := explain.ConvertFTrace(f, w); err != nil {
		return fmt.Errorf("convert %s: %w", in, err)
	}
	if out != "-" {
		if err := w.Close(); err != nil {
			return err
		}
		fmt.Printf("converted %s to %s\n", in, out)
	}
	return nil
}

func parseFeatures(s string) (insp.FeatureMode, error) {
	switch s {
	case "manual":
		return insp.ManualFeatures, nil
	case "compacted":
		return insp.CompactedFeatures, nil
	case "native":
		return insp.NativeFeatures, nil
	}
	return 0, fmt.Errorf("unknown feature mode %q", s)
}

func parseReward(s string) (insp.RewardKind, error) {
	switch s {
	case "percentage":
		return insp.PercentageReward, nil
	case "native":
		return insp.NativeReward, nil
	case "winloss":
		return insp.WinLossReward, nil
	}
	return 0, fmt.Errorf("unknown reward kind %q", s)
}
