// Command tracegen emits synthetic job traces in Standard Workload Format.
//
// Usage:
//
//	tracegen -trace SDSC-SP2 -jobs 20000 -seed 42 -o sdsc.swf
//	tracegen -custom -procs 512 -interval 300 -est 7200 -res 16 -o custom.swf
//
// Built-in traces reproduce the aggregate statistics of the logs the
// SchedInspector paper evaluates on (Table 2); -custom exposes the
// generator's knobs directly.
package main

import (
	"flag"
	"fmt"
	"os"

	insp "schedinspector"
	"schedinspector/internal/workload"
)

func main() {
	var (
		name   = flag.String("trace", "SDSC-SP2", "built-in trace (SDSC-SP2, CTC-SP2, HPC2N, Lublin)")
		jobs   = flag.Int("jobs", 20000, "number of jobs")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
		custom = flag.Bool("custom", false, "use the custom generator instead of a built-in trace")

		procs    = flag.Int("procs", 256, "custom: cluster size")
		interval = flag.Float64("interval", 600, "custom: mean arrival interval (s)")
		est      = flag.Float64("est", 7200, "custom: mean estimated runtime (s)")
		res      = flag.Float64("res", 16, "custom: mean requested processors")
		burst    = flag.Float64("burst", 0.45, "custom: arrival burstiness (gamma shape; 1 = Poisson)")
		diurnal  = flag.Float64("diurnal", 0.7, "custom: day/night cycle strength 0..1")
	)
	flag.Parse()

	var tr *insp.Trace
	if *custom {
		tr = workload.Generate(workload.SynthConfig{
			Name: "custom", MaxProcs: *procs, Jobs: *jobs, Seed: *seed,
			Interval: *interval, MeanEst: *est, Procs: *res,
			Burst: *burst, Diurnal: *diurnal,
		})
	} else {
		t, err := workload.ByName(*name, *jobs, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(2)
		}
		tr = t
	}

	if *out != "" {
		// WriteSWFFile gzips when the path ends in .gz
		if err := workload.WriteSWFFile(*out, tr); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	} else if err := insp.WriteSWF(os.Stdout, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	s := insp.ComputeTraceStats(tr)
	fmt.Fprintf(os.Stderr, "tracegen: %d jobs, cluster %d, interval %.0f s, est %.0f s, res %.1f\n",
		s.Jobs, s.MaxProcs, s.MeanInterval, s.MeanEst, s.MeanProcs)
}
