// Command loopsmoke is the traffic driver and assertion half of the
// `make loop-smoke` gate: against an inspectord started with -online, it
// generates synthetic /v1/inspect traffic, then polls /v1/online/status
// until the continual-learning loop has demonstrably tailed the decisions,
// retrained a candidate, shadow-evaluated it, and reached a verdict —
// promoted (the generation gauge on /metrics bumps, serving uninterrupted)
// or cleanly rejected. Any other terminal state, or silence until -timeout,
// fails the run. The final status JSON is written to -status-out so CI can
// attach it as an artifact.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"schedinspector/internal/online"
)

type inspectReq struct {
	Job struct {
		Wait  float64 `json:"wait"`
		Est   float64 `json:"est"`
		Procs int     `json:"procs"`
	} `json:"job"`
	FreeProcs  int             `json:"free_procs"`
	TotalProcs int             `json:"total_procs"`
	Queue      []inspectQueued `json:"queue"`
}

type inspectQueued struct {
	Wait  float64 `json:"wait"`
	Est   float64 `json:"est"`
	Procs int     `json:"procs"`
}

func main() {
	var (
		base      = flag.String("addr", "http://127.0.0.1:8642", "inspectord base URL")
		requests  = flag.Int("requests", 1500, "synthetic /v1/inspect requests in the initial burst")
		timeout   = flag.Duration("timeout", 120*time.Second, "deadline for the loop to reach a verdict")
		statusOut = flag.String("status-out", "", "write the final /v1/online/status JSON here (CI artifact)")
		seed      = flag.Int64("seed", 1, "traffic generator seed")
	)
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	fail := func(format string, args ...any) {
		// Best-effort artifact before exiting: the status body is the
		// primary debugging surface for a failed gate.
		if st, err := fetchStatus(client, *base); err == nil {
			dumpStatus(*statusOut, st)
			fmt.Fprintf(os.Stderr, "loopsmoke: last status: %+v\n", st)
		}
		fmt.Fprintf(os.Stderr, "loopsmoke: FAIL: "+format+"\n", args...)
		os.Exit(1)
	}

	if err := waitHealthy(client, *base, 30*time.Second); err != nil {
		fail("daemon never became healthy: %v", err)
	}
	st, err := fetchStatus(client, *base)
	if err != nil {
		fail("GET /v1/online/status: %v (was inspectord started with -online?)", err)
	}
	if !st.Enabled {
		fail("online loop reports disabled")
	}
	startGen := st.ServingGeneration
	if mg, err := metricGauge(client, *base, "schedinspector_model_generation"); err != nil {
		fail("reading generation gauge: %v", err)
	} else if int64(mg) != startGen {
		fail("generation gauge %v disagrees with status %d at start", mg, startGen)
	}

	rng := rand.New(rand.NewSource(*seed))
	sent, errs := 0, 0
	send := func(n int) {
		for i := 0; i < n; i++ {
			if err := postInspect(client, *base, rng); err != nil {
				errs++
				fail("inspect request %d failed (serving interrupted?): %v", sent, err)
			}
			sent++
		}
	}
	send(*requests)
	fmt.Printf("loopsmoke: %d decisions served, waiting for the loop (timeout %v)\n", sent, *timeout)

	deadline := time.Now().Add(*timeout)
	for {
		st, err = fetchStatus(client, *base)
		if err != nil {
			fail("status poll: %v", err)
		}
		if st.Retrains > 0 && st.ShadowEvals > 0 && st.Promotions+st.Rejections > 0 {
			break
		}
		if time.Now().After(deadline) {
			fail("loop reached no verdict before timeout: retrains=%d shadow_evals=%d promotions=%d rejections=%d window=%d/%d last_error=%q",
				st.Retrains, st.ShadowEvals, st.Promotions, st.Rejections,
				st.WindowRecords, st.MinWindow, st.LastError)
		}
		// Serving must stay uninterrupted while the loop trains/evaluates.
		send(25)
		time.Sleep(200 * time.Millisecond)
	}

	// Verdict checks: a promotion must move the generation gauge forward
	// and stay consistent between /metrics and the status endpoint; a
	// rejection must leave the serving generation alone (modulo operator
	// reloads, which don't happen in this harness).
	if st.RetrainFailures > 0 {
		fail("retrain failures during smoke: %+v", st)
	}
	gauge, err := metricGauge(client, *base, "schedinspector_model_generation")
	if err != nil {
		fail("reading generation gauge: %v", err)
	}
	if int64(gauge) != st.ServingGeneration {
		// The loop may have completed another cycle between the two reads;
		// refetch once before calling it an inconsistency.
		if st, err = fetchStatus(client, *base); err != nil {
			fail("status refetch: %v", err)
		}
		if int64(gauge) != st.ServingGeneration {
			fail("generation gauge %v disagrees with status %d", gauge, st.ServingGeneration)
		}
	}
	verdict := "rejected"
	if st.Promotions > 0 {
		verdict = "promoted"
		if st.ServingGeneration <= startGen {
			fail("promotion did not bump the serving generation: %d -> %d", startGen, st.ServingGeneration)
		}
	} else if st.ServingGeneration != startGen {
		fail("rejection must not move the generation: %d -> %d", startGen, st.ServingGeneration)
	}

	// Post-verdict traffic: the swap (or non-swap) must not have disturbed
	// the serving path.
	send(100)
	dumpStatus(*statusOut, st)
	fmt.Printf("loopsmoke: PASS — candidate trained (%d epochs), shadow-evaluated (cand %.4f vs serving %.4f, margin %g) and %s; generation %d, %d decisions served, 0 failures\n",
		st.RetrainEpochs, st.LastCandidateScore, st.LastServingScore, st.Margin, verdict, st.ServingGeneration, sent)
}

func waitHealthy(c *http.Client, base string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := c.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("healthz status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func fetchStatus(c *http.Client, base string) (online.Status, error) {
	var st online.Status
	resp, err := c.Get(base + "/v1/online/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func postInspect(c *http.Client, base string, rng *rand.Rand) error {
	var req inspectReq
	req.Job.Wait = float64(rng.Intn(3600))
	req.Job.Est = float64(60 + rng.Intn(7200))
	req.Job.Procs = 1 + rng.Intn(32)
	req.TotalProcs = 128
	req.FreeProcs = rng.Intn(129)
	req.Queue = []inspectQueued{{Wait: float64(rng.Intn(600)), Est: 600, Procs: 1 + rng.Intn(8)}}
	body, _ := json.Marshal(req)
	resp, err := c.Post(base+"/v1/inspect", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var out struct {
		Reject     *bool    `json:"reject"`
		RejectProb *float64 `json:"reject_prob"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("torn response body: %w", err)
	}
	if out.Reject == nil || out.RejectProb == nil {
		return fmt.Errorf("incomplete verdict: %+v", out)
	}
	return nil
}

// metricGauge scans the Prometheus text exposition for a bare (unlabelled)
// gauge value.
func metricGauge(c *http.Client, base, name string) (float64, error) {
	resp, err := c.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		return strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name)), 64)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

func dumpStatus(path string, st online.Status) {
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(b, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "loopsmoke: writing %s: %v\n", path, err)
	}
}
