// Package cmd_test builds the repository's binaries and smoke-tests their
// command-line surfaces end to end: tracegen → schedinspect train → eval →
// inspect → inspectord serving the trained model over HTTP.
package cmd_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildAll compiles every cmd/ binary once into a shared temp dir.
func buildAll(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"tracegen", "schedinspect", "inspectord", "expreport", "benchjson"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./"+name)
		cmd.Dir = mustSelfDir(t)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
	}
	return dir
}

// mustSelfDir returns the cmd/ directory (where this test file lives).
func mustSelfDir(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, buf.String())
	}
	return buf.String()
}

// TestBenchJSON pipes canned `go test -bench` output through benchjson and
// checks the emitted document.
func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "benchjson")
	build := exec.Command("go", "build", "-o", bin, "./benchjson")
	build.Dir = mustSelfDir(t)
	if b, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build benchjson: %v\n%s", err, b)
	}
	out := filepath.Join(dir, "bench.json")
	cmd := exec.Command(bin, "-o", out)
	cmd.Stdin = strings.NewReader(`goos: linux
goarch: amd64
pkg: schedinspector
BenchmarkEnvStep-8   	   16825	     71833 ns/op	       362.8 ns/decision	       0 B/op	       0 allocs/op
BenchmarkSimulator 	    9423	    121741 ns/op
PASS
ok  	schedinspector	1.949s
`)
	if b, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("benchjson: %v\n%s", err, b)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Benchmarks []struct {
			Name       string             `json:"name"`
			Procs      int                `json:"procs"`
			Iterations int64              `json:"iterations"`
			Metrics    map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, raw)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2:\n%s", len(rep.Benchmarks), raw)
	}
	env := rep.Benchmarks[0]
	if env.Name != "EnvStep" || env.Procs != 8 || env.Iterations != 16825 {
		t.Errorf("EnvStep parsed as %+v", env)
	}
	if env.Metrics["ns/decision"] != 362.8 || env.Metrics["allocs/op"] != 0 {
		t.Errorf("EnvStep metrics %+v", env.Metrics)
	}
	if sim := rep.Benchmarks[1]; sim.Name != "Simulator" || sim.Procs != 1 ||
		sim.Metrics["ns/op"] != 121741 {
		t.Errorf("Simulator parsed as %+v", sim)
	}
	// empty input is an error, not an empty document
	cmd = exec.Command(bin)
	cmd.Stdin = strings.NewReader("PASS\n")
	if err := cmd.Run(); err == nil {
		t.Error("benchjson accepted input with no benchmarks")
	}
}

// TestBenchJSONCheck exercises the regression-gate mode against a canned
// baseline: pass within tolerance, fail beyond it, fail on a new
// allocation where the baseline was allocation-free, fail on a missing
// benchmark.
func TestBenchJSONCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "benchjson")
	build := exec.Command("go", "build", "-o", bin, "./benchjson")
	build.Dir = mustSelfDir(t)
	if b, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build benchjson: %v\n%s", err, b)
	}
	baseline := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseline, []byte(`{"benchmarks":[
		{"name":"EnvStep","procs":8,"iterations":10000,
		 "metrics":{"ns/op":1000,"allocs/op":0}},
		{"name":"Simulator","procs":8,"iterations":10000,
		 "metrics":{"ns/op":2000,"allocs/op":5}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}

	checkRun := func(stdin string) (string, error) {
		cmd := exec.Command(bin, "-check", baseline, "-tolerance", "0.25")
		cmd.Stdin = strings.NewReader(stdin)
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = io.Discard
		err := cmd.Run()
		return buf.String(), err
	}

	// Within tolerance (+20% ns/op, allocs unchanged): pass.
	out, err := checkRun(`BenchmarkEnvStep-8   10000   1200 ns/op   0 allocs/op
BenchmarkSimulator-8   10000   2100 ns/op   5 allocs/op
PASS
`)
	if err != nil {
		t.Fatalf("within-tolerance run failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "ok   EnvStep") {
		t.Errorf("missing ok line:\n%s", out)
	}

	// Beyond tolerance: fail and say so.
	out, err = checkRun(`BenchmarkEnvStep-8   10000   1300 ns/op   0 allocs/op
BenchmarkSimulator-8   10000   2000 ns/op   5 allocs/op
`)
	if err == nil {
		t.Fatalf("+30%% regression accepted:\n%s", out)
	}
	if !strings.Contains(out, "FAIL EnvStep") {
		t.Errorf("regression not named:\n%s", out)
	}

	// New allocation on a 0-alloc baseline: fail even though ns/op is fine.
	out, err = checkRun(`BenchmarkEnvStep-8   10000   1000 ns/op   2 allocs/op
BenchmarkSimulator-8   10000   2000 ns/op   5 allocs/op
`)
	if err == nil {
		t.Fatalf("new allocation accepted:\n%s", out)
	}
	if !strings.Contains(out, "allocation-free") {
		t.Errorf("allocation failure not explained:\n%s", out)
	}

	// Baseline benchmark missing from the run: fail.
	out, err = checkRun(`BenchmarkEnvStep-8   10000   1000 ns/op   0 allocs/op
`)
	if err == nil {
		t.Fatalf("missing benchmark accepted:\n%s", out)
	}
	if !strings.Contains(out, "FAIL Simulator") {
		t.Errorf("missing benchmark not named:\n%s", out)
	}
}

// TestCLICheckpointResume pins the CLI half of the kill-and-resume
// guarantee: a run trained straight to N epochs and a run trained to N/2,
// stopped, and resumed with -resume produce byte-identical model files.
func TestCLICheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test skipped in -short mode")
	}
	bins := buildAll(t)
	work := t.TempDir()
	swf := filepath.Join(work, "trace.swf.gz")
	run(t, filepath.Join(bins, "tracegen"), "-trace", "SDSC-SP2", "-jobs", "3000", "-o", swf)

	common := []string{"train", "-swf", swf, "-policy", "SJF", "-metric", "bsld",
		"-batch", "4", "-seqlen", "64", "-seed", "42"}
	modelA := filepath.Join(work, "straight.gob")
	run(t, filepath.Join(bins, "schedinspect"),
		append(common, "-epochs", "4", "-model", modelA)...)

	// Half the epochs, checkpointing every epoch, then resume to the target.
	ckdir := filepath.Join(work, "ckpts")
	modelB := filepath.Join(work, "resumed.gob")
	run(t, filepath.Join(bins, "schedinspect"),
		append(common, "-epochs", "2", "-checkpoint-dir", ckdir, "-checkpoint-every", "1",
			"-model", filepath.Join(work, "half.gob"))...)
	out := run(t, filepath.Join(bins, "schedinspect"),
		append(common, "-epochs", "4", "-checkpoint-dir", ckdir, "-resume", "-model", modelB)...)
	if !strings.Contains(out, "resumed from checkpoint at epoch 2") {
		t.Fatalf("resume not reported:\n%s", out)
	}

	a, err := os.ReadFile(modelA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(modelB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("resumed model bytes differ from the uninterrupted run")
	}

	// A checkpoint-keep sweep ran: only the retained files remain, all
	// named ckpt-*.ckpt.
	des, err := os.ReadDir(ckdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) == 0 || len(des) > 3 {
		t.Errorf("checkpoint dir holds %d files, want 1..3 (keep default 3)", len(des))
	}
	for _, de := range des {
		if !strings.HasPrefix(de.Name(), "ckpt-") || !strings.HasSuffix(de.Name(), ".ckpt") {
			t.Errorf("unexpected file %s in checkpoint dir", de.Name())
		}
	}

	// -resume without -checkpoint-dir is refused.
	cmd := exec.Command(filepath.Join(bins, "schedinspect"),
		append(common, "-epochs", "4", "-resume", "-model", modelB)...)
	if err := cmd.Run(); err == nil {
		t.Error("-resume without -checkpoint-dir accepted")
	}
}

// TestCLIServeCheckpointHotSwap serves a raw training checkpoint with
// inspectord and exercises both reload triggers (admin endpoint, SIGHUP)
// plus the failure path: a corrupt file on disk must leave the current
// model serving.
func TestCLIServeCheckpointHotSwap(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test skipped in -short mode")
	}
	bins := buildAll(t)
	work := t.TempDir()
	swf := filepath.Join(work, "trace.swf.gz")
	run(t, filepath.Join(bins, "tracegen"), "-trace", "SDSC-SP2", "-jobs", "2000", "-o", swf)

	ckdir := filepath.Join(work, "ckpts")
	run(t, filepath.Join(bins, "schedinspect"), "train",
		"-swf", swf, "-policy", "SJF", "-metric", "bsld",
		"-epochs", "1", "-batch", "4", "-seqlen", "64", "-seed", "42",
		"-checkpoint-dir", ckdir, "-model", filepath.Join(work, "model.gob"))
	des, err := os.ReadDir(ckdir)
	if err != nil || len(des) == 0 {
		t.Fatalf("no checkpoint written: %v", err)
	}
	ckfile := filepath.Join(ckdir, des[len(des)-1].Name())

	const addr = "127.0.0.1:18643"
	var srvLog bytes.Buffer
	srv := exec.Command(filepath.Join(bins, "inspectord"),
		"-model", ckfile, "-addr", addr, "-seed", "7")
	srv.Stderr = &srvLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("inspectord never came up serving a checkpoint: %v\n%s", err, srvLog.String())
	}
	resp.Body.Close()

	// Admin-triggered reload re-reads the checkpoint and bumps generation.
	resp, err = http.Post("http://"+addr+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rl struct {
		Generation int `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rl.Generation != 2 {
		t.Fatalf("admin reload: status %d, generation %d, want 200/2", resp.StatusCode, rl.Generation)
	}

	// SIGHUP triggers the same swap.
	if err := srv.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	if !pollMetrics(t, addr, "schedinspector_model_reloads_total 2") {
		t.Fatalf("SIGHUP reload not recorded\n%s", srvLog.String())
	}

	// A corrupt file on disk: reload fails, the old model keeps serving.
	if err := os.WriteFile(ckfile, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post("http://"+addr+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt reload status %d, want 500", resp.StatusCode)
	}
	if !pollMetrics(t, addr, "schedinspector_model_load_failures_total 1") {
		t.Fatalf("load failure not recorded\n%s", srvLog.String())
	}
	body := `{"job":{"wait":120,"est":3600,"procs":16},"free_procs":32,"total_procs":128}`
	resp, err = http.Post("http://"+addr+"/v1/inspect", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inspect after failed reload: status %d", resp.StatusCode)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- srv.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("inspectord exit after SIGTERM: %v\n%s", err, srvLog.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("inspectord did not exit after SIGTERM\n%s", srvLog.String())
	}
}

// pollMetrics waits for the /metrics page to contain want.
func pollMetrics(t *testing.T, addr, want string) bool {
	t.Helper()
	for i := 0; i < 50; i++ {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if strings.Contains(string(b), want) {
				return true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return false
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test skipped in -short mode")
	}
	bins := buildAll(t)
	work := t.TempDir()
	swf := filepath.Join(work, "trace.swf.gz")
	model := filepath.Join(work, "model.gob")

	// tracegen: emit a small gzipped SWF trace.
	out := run(t, filepath.Join(bins, "tracegen"), "-trace", "SDSC-SP2", "-jobs", "3000", "-o", swf)
	if _, err := os.Stat(swf); err != nil {
		t.Fatalf("tracegen produced no file: %v\n%s", err, out)
	}

	// schedinspect stats on the generated file.
	out = run(t, filepath.Join(bins, "schedinspect"), "stats", "-swf", swf)
	if !strings.Contains(out, "3000 jobs") || !strings.Contains(out, "cluster 128") {
		t.Fatalf("stats output unexpected:\n%s", out)
	}

	// train a tiny model on the SWF trace, with telemetry.
	telemetry := filepath.Join(work, "telemetry.csv")
	out = run(t, filepath.Join(bins, "schedinspect"), "train",
		"-swf", swf, "-policy", "SJF", "-metric", "bsld",
		"-epochs", "2", "-batch", "4", "-seqlen", "64", "-model", model,
		"-telemetry", telemetry)
	if !strings.Contains(out, "model saved") {
		t.Fatalf("train did not save:\n%s", out)
	}
	tele, err := os.ReadFile(telemetry)
	if err != nil {
		t.Fatalf("telemetry file: %v", err)
	}
	if head := strings.SplitN(string(tele), "\n", 2)[0]; !strings.Contains(head, "entropy") ||
		!strings.Contains(head, "approx_kl") || !strings.Contains(head, "mean_reward") ||
		!strings.Contains(head, "policy_loss") {
		t.Fatalf("telemetry header missing columns: %q", head)
	}
	if lines := strings.Count(strings.TrimSpace(string(tele)), "\n"); lines != 2 {
		t.Fatalf("telemetry rows %d, want 2 epochs + header:\n%s", lines, tele)
	}

	// expreport plots learning curves from the telemetry file.
	out = run(t, filepath.Join(bins, "expreport"), "-curves", telemetry)
	if !strings.Contains(out, "mean_reward") || !strings.Contains(out, "2 epochs") {
		t.Fatalf("expreport -curves unexpected:\n%s", out)
	}

	// evaluate the model.
	out = run(t, filepath.Join(bins, "schedinspect"), "eval",
		"-swf", swf, "-policy", "SJF", "-metric", "bsld",
		"-sequences", "3", "-seqlen", "64", "-model", model)
	if !strings.Contains(out, "mean improvement") {
		t.Fatalf("eval output unexpected:\n%s", out)
	}

	// §5 analysis over the trace.
	out = run(t, filepath.Join(bins, "schedinspect"), "inspect",
		"-swf", swf, "-policy", "SJF", "-model", model)
	if !strings.Contains(out, "queue_delays") {
		t.Fatalf("inspect output unexpected:\n%s", out)
	}

	// expreport: list and one tiny experiment.
	out = run(t, filepath.Join(bins, "expreport"), "-list")
	if !strings.Contains(out, "fig13") || !strings.Contains(out, "rlsched") {
		t.Fatalf("expreport -list unexpected:\n%s", out)
	}
	out = run(t, filepath.Join(bins, "expreport"), "-tiny", "-exp", "table1")
	if !strings.Contains(out, "Case(b)-Inspected") {
		t.Fatalf("expreport table1 unexpected:\n%s", out)
	}

	// inspectord: serve the trained model and query it. -seed is explicit
	// here; the effective seed is also logged at startup either way.
	var srvLog bytes.Buffer
	srv := exec.Command(filepath.Join(bins, "inspectord"),
		"-model", model, "-addr", "127.0.0.1:18642", "-seed", "7")
	srv.Stderr = &srvLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get("http://127.0.0.1:18642/healthz")
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("inspectord never came up: %v", err)
	}
	var info struct {
		FeatureMode string `json:"feature_mode"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.FeatureMode != "manual" {
		t.Fatalf("served model info: %+v", info)
	}
	body := `{"job":{"wait":120,"est":3600,"procs":16},"free_procs":32,"total_procs":128}`
	resp, err = http.Post("http://127.0.0.1:18642/v1/inspect", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var verdict struct {
		RejectProb float64 `json:"reject_prob"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&verdict); err != nil {
		t.Fatal(err)
	}
	if verdict.RejectProb < 0 || verdict.RejectProb > 1 {
		t.Fatalf("reject prob %v", verdict.RejectProb)
	}

	// /v1/simulate: a what-if schedule driven by the served model.
	simBody := `{"policy":"SJF","backfill":true,"max_procs":64,"inspector":"greedy",
		"jobs":[{"submit":0,"run":600,"est":900,"procs":48},
		        {"submit":10,"run":300,"est":400,"procs":32},
		        {"submit":20,"run":100,"est":120,"procs":8}]}`
	resp, err = http.Post("http://127.0.0.1:18642/v1/simulate", "application/json", strings.NewReader(simBody))
	if err != nil {
		t.Fatal(err)
	}
	var simResp struct {
		Jobs        int     `json:"jobs"`
		Inspections int     `json:"inspections"`
		Makespan    float64 `json:"makespan"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&simResp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if simResp.Jobs != 3 || simResp.Makespan <= 0 {
		t.Fatalf("simulate response unexpected: %+v", simResp)
	}

	// /metrics reflects the traffic served so far.
	resp, err = http.Get("http://127.0.0.1:18642/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	prom := string(promBytes)
	for _, want := range []string{
		"# TYPE schedinspector_http_requests_total counter",
		`schedinspector_http_requests_total{code="200",route="/v1/inspect"} 1`,
		"# TYPE schedinspector_http_request_duration_seconds histogram",
		"schedinspector_inspect_reject_ratio",
		"schedinspector_inspect_decisions_total",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q:\n%s", want, prom)
		}
	}

	// Graceful shutdown: SIGTERM drains and exits cleanly.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- srv.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("inspectord exit after SIGTERM: %v\n%s", err, srvLog.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("inspectord did not exit after SIGTERM\n%s", srvLog.String())
	}
	logOut := srvLog.String()
	if !strings.Contains(logOut, "decision-sampling seed 7") {
		t.Errorf("effective seed not logged:\n%s", logOut)
	}
	if !strings.Contains(logOut, "stopped") {
		t.Errorf("graceful shutdown not logged:\n%s", logOut)
	}
}

// TestCLIFlightRecorder smoke-tests the decision flight recorder end to
// end: train with -flight, query the trace with schedinspect explain,
// plot it with expreport -rejects, and read back served decisions from
// inspectord's /v1/explain/last. The -workers 1 vs -workers 4 runs must
// produce identical feature-stats — the explain records are keyed by
// stable (epoch, trajectory, sequence) IDs, not by execution order.
func TestCLIFlightRecorder(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke test skipped in -short mode")
	}
	bins := buildAll(t)
	work := t.TempDir()
	swf := filepath.Join(work, "trace.swf.gz")
	model := filepath.Join(work, "model.gob")
	run(t, filepath.Join(bins, "tracegen"), "-trace", "SDSC-SP2", "-jobs", "3000", "-o", swf)

	common := []string{"train", "-swf", swf, "-policy", "SJF", "-metric", "bsld",
		"-epochs", "2", "-batch", "4", "-seqlen", "64", "-seed", "42"}
	flight1 := filepath.Join(work, "flight-w1.jsonl")
	flight4 := filepath.Join(work, "flight-w4.jsonl")
	out := run(t, filepath.Join(bins, "schedinspect"),
		append(common, "-workers", "1", "-flight", flight1, "-model", model)...)
	if !strings.Contains(out, "flight trace written") {
		t.Fatalf("flight trace not reported:\n%s", out)
	}
	run(t, filepath.Join(bins, "schedinspect"),
		append(common, "-workers", "4", "-flight", flight4, "-model", filepath.Join(work, "m4.gob"))...)

	// Default summary names the trace contents.
	out = run(t, filepath.Join(bins, "schedinspect"), "explain", "-in", flight1)
	if !strings.Contains(out, "decisions") || !strings.Contains(out, "manual features") {
		t.Fatalf("explain summary unexpected:\n%s", out)
	}

	// Worker-count independence, through the whole CLI pipeline: the
	// reject-attribution tables from the two runs are byte-identical.
	stats1 := run(t, filepath.Join(bins, "schedinspect"), "explain", "-in", flight1, "-feature-stats")
	stats4 := run(t, filepath.Join(bins, "schedinspect"), "explain", "-in", flight4, "-feature-stats")
	if stats1 != stats4 {
		t.Fatalf("feature-stats differ across worker counts:\n-- workers=1:\n%s\n-- workers=4:\n%s", stats1, stats4)
	}
	if !strings.Contains(stats1, "mean(accept)") || !strings.Contains(stats1, "queue_delays") {
		t.Fatalf("feature-stats output unexpected:\n%s", stats1)
	}

	// And re-running the same query is deterministic.
	if again := run(t, filepath.Join(bins, "schedinspect"), "explain", "-in", flight1, "-feature-stats"); again != stats1 {
		t.Fatal("explain -feature-stats not deterministic across invocations")
	}

	// Top-rejected and window queries produce their tables.
	out = run(t, filepath.Join(bins, "schedinspect"), "explain", "-in", flight1, "-top-rejected", "5")
	if !strings.Contains(out, "rejects") {
		t.Fatalf("top-rejected output unexpected:\n%s", out)
	}
	out = run(t, filepath.Join(bins, "schedinspect"), "explain", "-in", flight1, "-window", "0:1e12")
	if !strings.Contains(out, "verdict") {
		t.Fatalf("window output unexpected:\n%s", out)
	}

	// expreport -rejects plots the reject-rate-vs-utilization curve.
	out = run(t, filepath.Join(bins, "expreport"), "-rejects", flight1)
	if !strings.Contains(out, "reject rate vs utilization") || !strings.Contains(out, "0.9-1.0") {
		t.Fatalf("expreport -rejects unexpected:\n%s", out)
	}

	// version subcommand reports the stamped build identity.
	out = run(t, filepath.Join(bins, "schedinspect"), "version")
	if !strings.Contains(out, "schedinspect") || !strings.Contains(out, "go1.") {
		t.Fatalf("version output unexpected:\n%s", out)
	}

	// inspectord: served decisions land in /v1/explain/last, and /metrics
	// carries build_info plus the runtime self-profiling gauges.
	const addr = "127.0.0.1:18644"
	var srvLog bytes.Buffer
	srv := exec.Command(filepath.Join(bins, "inspectord"),
		"-model", model, "-addr", addr, "-seed", "7", "-proc-interval", "50ms")
	srv.Stderr = &srvLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()
	var (
		resp *http.Response
		err  error
	)
	for i := 0; i < 50; i++ {
		resp, err = http.Get("http://" + addr + "/healthz")
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("inspectord never came up: %v\n%s", err, srvLog.String())
	}
	resp.Body.Close()

	body := `{"job":{"wait":120,"est":3600,"procs":16},"free_procs":32,"total_procs":128}`
	for i := 0; i < 3; i++ {
		resp, err = http.Post("http://"+addr+"/v1/inspect", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err = http.Get("http://" + addr + "/v1/explain/last?n=2")
	if err != nil {
		t.Fatal(err)
	}
	var last struct {
		Total        int      `json:"total"`
		FeatureNames []string `json:"feature_names"`
		Records      []struct {
			Seq      int  `json:"seq"`
			Sampled  bool `json:"sampled"`
			Rejected bool `json:"rejected"`
		} `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&last); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if last.Total != 3 || len(last.Records) != 2 || len(last.FeatureNames) == 0 {
		t.Fatalf("/v1/explain/last: %+v", last)
	}
	if last.Records[1].Seq != 2 || !last.Records[1].Sampled {
		t.Fatalf("/v1/explain/last records: %+v", last.Records)
	}

	if !pollMetrics(t, addr, "schedinspector_build_info") {
		t.Fatalf("build_info missing from /metrics\n%s", srvLog.String())
	}
	if !pollMetrics(t, addr, "schedinspector_goroutines") {
		t.Fatalf("proc sampler gauges missing from /metrics\n%s", srvLog.String())
	}
	srv.Process.Signal(syscall.SIGTERM)
	srv.Wait()
}
