// Command expreport regenerates the paper's evaluation: every table and
// figure of "SchedInspector" (HPDC '22), printed as text reports.
//
// Usage:
//
//	expreport                     # run everything at report scale
//	expreport -exp fig4,table5    # run selected experiments
//	expreport -list               # list experiment names
//	expreport -full               # paper-scale settings (slow)
//	expreport -tiny               # smoke-test scale (seconds)
//
// Scale can also be tuned directly with -jobs, -epochs, -batch, -seqlen,
// -eval-seqs and -eval-seqlen.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"schedinspector/internal/expt"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exps    = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		full    = flag.Bool("full", false, "paper-scale settings (batch 100, 45 epochs, 50x256 eval; slow)")
		tiny    = flag.Bool("tiny", false, "smoke-test scale (seconds per experiment)")
		verbose = flag.Bool("v", false, "print every training epoch")

		jobs     = flag.Int("jobs", 0, "jobs per generated trace (0 = preset default)")
		epochs   = flag.Int("epochs", 0, "training epochs")
		batch    = flag.Int("batch", 0, "trajectories per training epoch")
		seqLen   = flag.Int("seqlen", 0, "jobs per training trajectory")
		evalSeqs = flag.Int("eval-seqs", 0, "sampled test sequences")
		evalLen  = flag.Int("eval-seqlen", 0, "jobs per test sequence")
		seed     = flag.Int64("seed", 0, "base RNG seed")
		workers  = flag.Int("workers", 0, "rollout worker goroutines (0 = one per CPU); results are identical at any count")
		curves   = flag.String("curves", "", "plot learning curves from a training-telemetry CSV/JSONL file and exit (see schedinspect train -telemetry)")
		rejects  = flag.String("rejects", "", "plot reject rate vs utilization from a decision flight trace and exit (see schedinspect train/eval -flight)")
	)
	flag.Parse()

	if *curves != "" {
		if err := expt.PlotTelemetry(os.Stdout, *curves); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *rejects != "" {
		if err := expt.PlotRejects(os.Stdout, *rejects); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range expt.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Title)
		}
		return
	}

	var o expt.Options
	switch {
	case *tiny:
		o = expt.Tiny(os.Stdout)
	case *full:
		o = expt.Options{Jobs: 20000, Epochs: 45, Batch: 100, SeqLen: 128, EvalSequences: 50, EvalSeqLen: 256}
	}
	o.Out = os.Stdout
	o.Verbose = *verbose
	if *jobs != 0 {
		o.Jobs = *jobs
	}
	if *epochs != 0 {
		o.Epochs = *epochs
	}
	if *batch != 0 {
		o.Batch = *batch
	}
	if *seqLen != 0 {
		o.SeqLen = *seqLen
	}
	if *evalSeqs != 0 {
		o.EvalSequences = *evalSeqs
	}
	if *evalLen != 0 {
		o.EvalSeqLen = *evalLen
	}
	if *seed != 0 {
		o.Seed = *seed
	}
	o.Workers = *workers

	var selected []expt.Experiment
	if *exps == "all" {
		selected = expt.All()
	} else {
		for _, name := range strings.Split(*exps, ",") {
			e, err := expt.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for i, e := range selected {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
		t0 := time.Now()
		if err := e.Run(o); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n", e.Name, time.Since(t0).Round(time.Second))
	}
}
