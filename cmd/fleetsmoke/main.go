// Command fleetsmoke is the traffic driver and assertion half of the
// `make fleet-smoke` gate. Against a live three-process fleet — one
// inspectord running the online loop and two train-workers exchanging
// over unix sockets, all watched by a `schedinspect fleet` daemon — it
// drives synthetic /v1/inspect traffic and then requires, before the
// deadline, that the fleet plane has demonstrably done its whole job:
//
//   - every target scraped and up, with history deep enough for rates;
//   - the inspectord target showing a positive decision rate and at
//     least one windowed histogram quantile;
//   - both workers aggregated into the cross-rank dist summary with a
//     positive fleet-wide epoch rate;
//   - the rank-straggler rule evaluated (fired or not — the smoke proves
//     the rule runs against real per-rank data, not that the tiny fleet
//     is skewed);
//   - at least one online candidate verdict surfaced end to end:
//     recorded by the loop, served at /v1/online/history, passed through
//     into /v1/fleet;
//   - the plane's own /metrics agreeing that all targets are up.
//
// The final /v1/fleet JSON is written to -out so CI can attach it as a
// failure artifact.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"time"

	"schedinspector/internal/fleet"
)

func main() {
	var (
		fleetBase = flag.String("fleet", "http://127.0.0.1:18655", "fleet daemon base URL")
		inspBase  = flag.String("inspectord", "http://127.0.0.1:18652", "inspectord base URL (traffic sink)")
		timeout   = flag.Duration("timeout", 150*time.Second, "deadline for all fleet assertions to hold")
		out       = flag.String("out", "", "write the final /v1/fleet JSON here (CI artifact)")
		seed      = flag.Int64("seed", 1, "traffic generator seed")
	)
	flag.Parse()

	client := &http.Client{Timeout: 10 * time.Second}
	var last *fleet.FleetStatus
	fail := func(format string, args ...any) {
		if last != nil {
			dumpStatus(*out, last)
			fmt.Fprintf(os.Stderr, "fleetsmoke: last /v1/fleet: %s\n", mustJSON(last))
		}
		fmt.Fprintf(os.Stderr, "fleetsmoke: FAIL: "+format+"\n", args...)
		os.Exit(1)
	}

	if err := waitUp(client, *inspBase+"/healthz", 30*time.Second); err != nil {
		fail("inspectord never became healthy: %v", err)
	}
	if err := waitUp(client, *fleetBase+"/v1/fleet", 30*time.Second); err != nil {
		fail("fleet daemon never became healthy: %v", err)
	}

	rng := rand.New(rand.NewSource(*seed))
	sent := 0
	send := func(n int) {
		for i := 0; i < n; i++ {
			if err := postInspect(client, *inspBase, rng); err != nil {
				fail("inspect request %d failed: %v", sent, err)
			}
			sent++
		}
	}
	send(1500)
	fmt.Printf("fleetsmoke: %d decisions sent, polling /v1/fleet (timeout %v)\n", sent, *timeout)

	deadline := time.Now().Add(*timeout)
	for {
		st, err := fetchFleet(client, *fleetBase)
		if err != nil {
			fail("GET /v1/fleet: %v", err)
		}
		last = st
		unmet := assess(st)
		if len(unmet) == 0 {
			break
		}
		if time.Now().After(deadline) {
			fail("assertions unmet at deadline: %s", strings.Join(unmet, "; "))
		}
		send(25) // keep the loop fed and the rates moving
		time.Sleep(300 * time.Millisecond)
	}

	// The plane's own exposition must agree — parsed with the same parser
	// the plane itself scrapes with.
	ups, err := selfUpGauges(client, *fleetBase)
	if err != nil {
		fail("fleet /metrics: %v", err)
	}
	for _, t := range last.Targets {
		if ups[t.Name] != 1 {
			fail("fleet self-metric target_up{target=%q} = %v, want 1", t.Name, ups[t.Name])
		}
	}

	dumpStatus(*out, last)
	insp := targetByKind(last, "inspectord")
	fmt.Printf("fleetsmoke: PASS — %d targets up (%d workers, %.2f epochs/s fleet-wide, skew %.2fx), "+
		"%.1f decisions/s, %d online verdicts surfaced, %d alerts active, %d decisions driven\n",
		len(last.Targets), last.Dist.Workers, last.Dist.EpochRate, last.Dist.SkewRatio,
		insp.Rates["schedinspector_inspect_decisions_total"],
		len(onlineCandidates(insp)), len(last.Alerts), sent)
}

// assess returns the not-yet-true assertions, empty when the gate holds.
func assess(st *fleet.FleetStatus) []string {
	var unmet []string
	if len(st.Targets) != 3 {
		return []string{fmt.Sprintf("want 3 targets, have %d", len(st.Targets))}
	}
	workers := 0
	for _, t := range st.Targets {
		if !t.Up {
			unmet = append(unmet, fmt.Sprintf("target %s down (%s)", t.Name, t.LastErr))
		}
		if t.Points < 2 {
			unmet = append(unmet, fmt.Sprintf("target %s has %d history points, need 2+ for rates", t.Name, t.Points))
		}
		if t.Kind == "train-worker" {
			workers++
		}
	}
	if len(unmet) > 0 {
		return unmet
	}
	if workers != 2 {
		unmet = append(unmet, fmt.Sprintf("want 2 train-workers, classified %d", workers))
	}

	insp := targetByKind(st, "inspectord")
	if insp == nil {
		return append(unmet, "no target classified as inspectord")
	}
	if r := insp.Rates["schedinspector_inspect_decisions_total"]; !(r > 0) {
		unmet = append(unmet, fmt.Sprintf("inspect decision rate not positive (%v)", r))
	}
	quantiles := 0
	for _, t := range st.Targets {
		quantiles += len(t.Quantiles)
	}
	if quantiles == 0 {
		unmet = append(unmet, "no histogram quantile derived on any target")
	}
	if st.Dist == nil || st.Dist.Workers != 2 {
		unmet = append(unmet, "dist summary missing or not aggregating both workers")
	} else if !(st.Dist.EpochRate > 0) {
		unmet = append(unmet, fmt.Sprintf("fleet-wide epoch rate not positive (%v)", st.Dist.EpochRate))
	}

	straggler := false
	for _, rs := range st.Rules {
		if rs.Name == "rank-straggler" && rs.Evaluated > 0 {
			straggler = true
		}
	}
	if !straggler {
		unmet = append(unmet, "rank-straggler rule never evaluated")
	}

	if len(onlineCandidates(insp)) == 0 {
		unmet = append(unmet, "no online candidate verdict surfaced in /v1/fleet yet")
	}
	return unmet
}

func targetByKind(st *fleet.FleetStatus, kind string) *fleet.TargetStatus {
	for i := range st.Targets {
		if st.Targets[i].Kind == kind {
			return &st.Targets[i]
		}
	}
	return nil
}

type candidate struct {
	Verdict string `json:"verdict"`
}

func onlineCandidates(t *fleet.TargetStatus) []candidate {
	if t == nil || len(t.OnlineHistory) == 0 {
		return nil
	}
	var doc struct {
		Candidates []candidate `json:"candidates"`
	}
	if err := json.Unmarshal(t.OnlineHistory, &doc); err != nil {
		return nil
	}
	var withVerdict []candidate
	for _, c := range doc.Candidates {
		if c.Verdict != "" {
			withVerdict = append(withVerdict, c)
		}
	}
	return withVerdict
}

func fetchFleet(c *http.Client, base string) (*fleet.FleetStatus, error) {
	resp, err := c.Get(base + "/v1/fleet")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var st fleet.FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// selfUpGauges scrapes the fleet daemon's own /metrics with the fleet
// parser and returns schedinspector_fleet_target_up by target label.
func selfUpGauges(c *http.Client, base string) (map[string]float64, error) {
	client := fleet.Client{HTTP: c}
	s, err := client.Scrape(context.Background(), base+"/metrics")
	if err != nil {
		return nil, err
	}
	f := s.Family("schedinspector_fleet_target_up")
	if f == nil {
		return nil, fmt.Errorf("schedinspector_fleet_target_up not exported")
	}
	ups := make(map[string]float64)
	for _, sm := range f.Samples {
		ups[sm.Labels["target"]] = sm.Value
	}
	return ups, nil
}

func waitUp(c *http.Client, url string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := c.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(250 * time.Millisecond)
	}
}

type inspectQueued struct {
	Wait  float64 `json:"wait"`
	Est   float64 `json:"est"`
	Procs int     `json:"procs"`
}

type inspectReq struct {
	Job        inspectQueued   `json:"job"`
	FreeProcs  int             `json:"free_procs"`
	TotalProcs int             `json:"total_procs"`
	Queue      []inspectQueued `json:"queue"`
}

func postInspect(c *http.Client, base string, rng *rand.Rand) error {
	var req inspectReq
	req.Job.Wait = float64(rng.Intn(3600))
	req.Job.Est = float64(60 + rng.Intn(7200))
	req.Job.Procs = 1 + rng.Intn(32)
	req.TotalProcs = 128
	req.FreeProcs = rng.Intn(129)
	req.Queue = []inspectQueued{{Wait: float64(rng.Intn(600)), Est: 600, Procs: 1 + rng.Intn(8)}}
	body, _ := json.Marshal(req)
	resp, err := c.Post(base+"/v1/inspect", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var out struct {
		Reject *bool `json:"reject"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("torn response body: %w", err)
	}
	if out.Reject == nil {
		return fmt.Errorf("incomplete verdict")
	}
	return nil
}

func mustJSON(v any) string {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Sprintf("<marshal: %v>", err)
	}
	return string(b)
}

func dumpStatus(path string, st *fleet.FleetStatus) {
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(st, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(b, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleetsmoke: writing %s: %v\n", path, err)
	}
}
