// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark results can be archived and diffed across commits
// (the `make bench` target pipes the Env benchmarks through it into
// BENCH_env.json).
//
// Usage:
//
//	go test -bench 'Env' -benchmem . | benchjson -o BENCH_env.json
//
// Input lines it does not recognize (goos/pkg headers, PASS, timings) pass
// through to stderr unchanged so the human-readable output stays visible.
//
// With -check it becomes a regression gate instead of an archiver: the
// fresh results on stdin are compared against a committed baseline
// document and the process exits non-zero when
//
//   - a benchmark regresses its ns/op beyond -tolerance (fractional, so
//     0.25 allows up to +25% before failing — wide enough for shared CI
//     runners, tight enough to catch real slowdowns),
//   - a benchmark that was allocation-free in the baseline now allocates
//     (0 allocs/op is a hard property, not a noisy measurement), or
//   - a baseline benchmark is missing from the fresh run (a renamed or
//     deleted benchmark must be renamed in the baseline too, not silently
//     dropped from coverage).
//
// Benchmarks are matched by name only, ignoring the GOMAXPROCS suffix, so
// a baseline recorded on an 8-core machine still gates a 4-core runner.
//
//	go test -bench 'Env' -benchmem ./internal/sim/ \
//	  | benchjson -check BENCH_env.json -tolerance 0.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`       // without the Benchmark prefix and -P suffix
	Procs      int                `json:"procs"`      // GOMAXPROCS suffix (1 if absent)
	Iterations int64              `json:"iterations"` // b.N
	Metrics    map[string]float64 `json:"metrics"`    // unit -> value (ns/op, allocs/op, ...)
}

// Report is the emitted document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkEnvStep-8   16825   71833 ns/op   362.8 ns/decision   0 B/op   0 allocs/op
//
// Returns ok=false for anything that is not a benchmark result.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

// readStdin parses benchmark result lines from stdin, echoing every line
// to stderr so the human-readable stream stays visible.
func readStdin() (Report, error) {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	if len(rep.Benchmarks) == 0 {
		return rep, fmt.Errorf("no benchmark results on stdin")
	}
	return rep, nil
}

func run(out string) error {
	rep, err := readStdin()
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// check compares fresh results on stdin against the baseline document and
// reports every violated expectation; any violation is an error.
func check(baselinePath string, tolerance float64) error {
	if tolerance < 0 {
		return fmt.Errorf("tolerance must be non-negative, got %v", tolerance)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", baselinePath, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("%s: baseline holds no benchmarks", baselinePath)
	}
	cur, err := readStdin()
	if err != nil {
		return err
	}
	byName := make(map[string]Benchmark, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		byName[b.Name] = b
	}

	failures := 0
	for _, b := range base.Benchmarks {
		c, ok := byName[b.Name]
		if !ok {
			fmt.Printf("FAIL %s: in baseline but not in this run\n", b.Name)
			failures++
			continue
		}
		baseNs, curNs := b.Metrics["ns/op"], c.Metrics["ns/op"]
		if baseNs > 0 {
			delta := curNs/baseNs - 1
			if delta > tolerance {
				fmt.Printf("FAIL %s: %.0f ns/op vs baseline %.0f (%+.1f%%, tolerance %+.0f%%)\n",
					b.Name, curNs, baseNs, 100*delta, 100*tolerance)
				failures++
			} else {
				fmt.Printf("ok   %s: %.0f ns/op vs baseline %.0f (%+.1f%%)\n",
					b.Name, curNs, baseNs, 100*delta)
			}
		}
		if baseAllocs, ok := b.Metrics["allocs/op"]; ok && baseAllocs == 0 {
			if got := c.Metrics["allocs/op"]; got > 0 {
				fmt.Printf("FAIL %s: %v allocs/op, baseline is allocation-free\n", b.Name, got)
				failures++
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark regression(s) against %s", failures, baselinePath)
	}
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("check", "", "compare stdin against this baseline JSON instead of emitting a document")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression in -check mode")
	flag.Parse()
	var err error
	if *baseline != "" {
		err = check(*baseline, *tolerance)
	} else {
		err = run(*out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
