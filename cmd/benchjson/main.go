// Command benchjson converts `go test -bench` text output into a JSON
// document, so benchmark results can be archived and diffed across commits
// (the `make bench` target pipes the Env benchmarks through it into
// BENCH_env.json).
//
// Usage:
//
//	go test -bench 'Env' -benchmem . | benchjson -o BENCH_env.json
//
// Input lines it does not recognize (goos/pkg headers, PASS, timings) pass
// through to stderr unchanged so the human-readable output stays visible.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`       // without the Benchmark prefix and -P suffix
	Procs      int                `json:"procs"`      // GOMAXPROCS suffix (1 if absent)
	Iterations int64              `json:"iterations"` // b.N
	Metrics    map[string]float64 `json:"metrics"`    // unit -> value (ns/op, allocs/op, ...)
}

// Report is the emitted document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkEnvStep-8   16825   71833 ns/op   362.8 ns/decision   0 B/op   0 allocs/op
//
// Returns ok=false for anything that is not a benchmark result.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndexByte(name, '-'); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true
}

func run(out string) error {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if b, ok := parseLine(line); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
		fmt.Fprintln(os.Stderr, line) // keep the human-readable stream
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results on stdin")
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
